"""A Floodlight-style SDN controller with a module chain.

The paper implements IoT Sentinel as "a custom module for Floodlight"
(Sect. V).  This controller reproduces the relevant part of that
architecture: registered modules see each packet-in event in order and may
return a forwarding decision; the first decision wins.  A baseline
:class:`LearningSwitchModule` provides plain L2 forwarding so the gateway
behaves like a normal AP when no enforcement module intervenes.

Instrumented with ``repro.obs``: packet-in events and flow-mods sent
(labelled add/delete) — the mechanism counts behind the Fig. 6a flow
overhead; see ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import counter as obs_counter
from repro.obs import names as obs_names

from .openflow import Action, FlowMod, FlowModCommand, FlowRule, PacketIn

__all__ = ["Decision", "ControllerModule", "LearningSwitchModule", "Controller"]


@dataclass(frozen=True)
class Decision:
    """A module's verdict on one packet-in event.

    ``actions`` are applied to the punted packet itself; ``install`` rules
    are pushed to the switch so subsequent packets of the flow bypass the
    controller (the standard reactive-flow-setup pattern).
    """

    actions: tuple[Action, ...]
    install: tuple[FlowRule, ...] = ()


class ControllerModule:
    """Base class for controller modules (Floodlight IFloodlightModule)."""

    name = "module"

    def on_packet_in(self, controller: "Controller", event: PacketIn) -> Decision | None:
        """Return a :class:`Decision` to claim the packet, or None to pass."""
        raise NotImplementedError

    def on_startup(self, controller: "Controller") -> None:
        """Called once when the controller starts."""


class LearningSwitchModule(ControllerModule):
    """Plain L2 learning switch behaviour (the no-enforcement baseline)."""

    name = "learning-switch"

    def on_packet_in(self, controller: "Controller", event: PacketIn) -> Decision | None:
        packet = event.packet
        out_port = controller.switch.port_of(packet.dst_mac) if packet.dst_mac else None
        if out_port is None or out_port == event.in_port:
            return Decision(actions=(Action.flood(),))
        rule = FlowRule(
            match=controller.exact_match(event),
            actions=(Action.output(out_port),),
            priority=10,
            idle_timeout=60.0,
        )
        return Decision(actions=(Action.output(out_port),), install=(rule,))


@dataclass
class Controller:
    """Holds the module chain and the connection to one switch."""

    switch: "object"  # OpenVSwitch; typed loosely to avoid import cycle
    modules: list[ControllerModule] = field(default_factory=list)
    flow_mods_sent: int = field(default=0, repr=False)
    packet_ins_handled: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.switch.attach_controller(self)

    def register(self, module: ControllerModule) -> None:
        """Append a module to the chain (earlier modules take precedence)."""
        self.modules.append(module)
        module.on_startup(self)

    def exact_match(self, event: PacketIn):
        """An exact match for the event's flow (src/dst MAC + L3/L4)."""
        from .openflow import FlowMatch

        packet = event.packet
        return FlowMatch(
            eth_src=packet.src_mac or None,
            eth_dst=packet.dst_mac or None,
            ip_dst=packet.dst_ip,
            tp_dst=packet.dst_port,
        )

    def handle_packet_in(self, switch: "object", event: PacketIn) -> tuple[Action, ...]:
        """Run the module chain; apply flow installs; return packet actions."""
        self.packet_ins_handled += 1
        obs_counter(obs_names.METRIC_PACKET_INS).inc()
        for module in self.modules:
            decision = module.on_packet_in(self, event)
            if decision is None:
                continue
            for rule in decision.install:
                self.send_flow_mod(FlowMod(command=FlowModCommand.ADD, rule=rule))
            return decision.actions
        return (Action.flood(),)

    def send_flow_mod(self, flow_mod: FlowMod) -> None:
        self.flow_mods_sent += 1
        if flow_mod.command is FlowModCommand.ADD:
            obs_counter(obs_names.METRIC_FLOW_MODS, command="add").inc()
            self.switch.install(flow_mod.rule)
        else:
            obs_counter(obs_names.METRIC_FLOW_MODS, command="delete").inc()
            self.switch.uninstall_cookie(flow_mod.rule.cookie)
