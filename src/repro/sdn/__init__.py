"""SDN enforcement substrate: OpenFlow model, switch, controller, rules.

A software model of the paper's Floodlight + Open vSwitch enforcement
plane (Sect. V): flow matching, the gateway's flow table, the controller
module chain, enforcement-rule caching and the trusted/untrusted overlays.
"""

from .controller import Controller, ControllerModule, Decision, LearningSwitchModule
from .flowtable import FlowTable
from .openflow import Action, ActionType, FlowMatch, FlowMod, FlowModCommand, FlowRule, PacketIn
from .overlay import IsolationLevel, OverlayManager, PolicyDecision
from .rules import EnforcementRule, EnforcementRuleCache, FlowPolicy
from .switch import ForwardingResult, OpenVSwitch

__all__ = [
    "Action",
    "ActionType",
    "Controller",
    "ControllerModule",
    "Decision",
    "EnforcementRule",
    "EnforcementRuleCache",
    "FlowMatch",
    "FlowMod",
    "FlowPolicy",
    "FlowModCommand",
    "FlowRule",
    "FlowTable",
    "ForwardingResult",
    "IsolationLevel",
    "LearningSwitchModule",
    "OpenVSwitch",
    "OverlayManager",
    "PacketIn",
    "PolicyDecision",
]
