"""An Open vSwitch-style software switch.

The data plane of the Security Gateway: ports, a MAC learning table, a
:class:`~repro.sdn.flowtable.FlowTable`, and a table-miss path that hands
packets to the attached controller (:mod:`repro.sdn.controller`).  The
paper's wireless-isolation trick — redirecting traffic between wireless
clients through OVS instead of letting the AP bridge it — is modelled by
simply attaching every wireless client to its own switch port, which is
what the OpenWRT redirect achieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packets.decoder import DecodedPacket, decode

from .flowtable import FlowTable
from .openflow import Action, ActionType, FlowRule, PacketIn

__all__ = ["ForwardingResult", "OpenVSwitch"]


@dataclass(frozen=True)
class ForwardingResult:
    """What the data plane did with one frame."""

    out_ports: tuple[int, ...]
    dropped: bool = False
    sent_to_controller: bool = False
    matched_rule: FlowRule | None = None
    packet: DecodedPacket | None = None

    @property
    def delivered(self) -> bool:
        return bool(self.out_ports) and not self.dropped


@dataclass
class OpenVSwitch:
    """Flow-table switch with MAC learning and controller punt path."""

    name: str = "ovs0"
    table: FlowTable = field(default_factory=FlowTable)
    _ports: set[int] = field(default_factory=set)
    _mac_table: dict[str, int] = field(default_factory=dict)
    _controller: "object | None" = None  # Controller; avoids circular import
    packets_processed: int = field(default=0, repr=False)
    packets_dropped: int = field(default=0, repr=False)
    table_misses: int = field(default=0, repr=False)

    def add_port(self, port: int) -> None:
        if port in self._ports:
            raise ValueError(f"port {port} already exists")
        self._ports.add(port)

    @property
    def ports(self) -> frozenset[int]:
        return frozenset(self._ports)

    def attach_controller(self, controller: object) -> None:
        self._controller = controller

    def port_of(self, mac: str) -> int | None:
        """Learned port for a MAC, if any."""
        return self._mac_table.get(mac)

    def learn(self, mac: str, port: int) -> None:
        """Seed the MAC table (e.g. from the AP's association table)."""
        if port not in self._ports:
            raise ValueError(f"unknown port {port}")
        self._mac_table[mac] = port

    def unlearn(self, mac: str) -> None:
        """Drop a MAC's learned-port entry (the device left the network)."""
        self._mac_table.pop(mac, None)

    def _apply_actions(
        self,
        actions: tuple[Action, ...],
        in_port: int,
        packet: DecodedPacket,
        *,
        rule: FlowRule | None,
        punted: bool,
    ) -> ForwardingResult:
        out: list[int] = []
        dropped = False
        for action in actions:
            if action.type is ActionType.DROP:
                dropped = True
            elif action.type is ActionType.OUTPUT:
                if action.port is None or action.port not in self._ports:
                    raise ValueError(f"output to unknown port {action.port}")
                out.append(action.port)
            elif action.type is ActionType.FLOOD:
                out.extend(sorted(self._ports - {in_port}))
            elif action.type is ActionType.CONTROLLER:
                punted = True
        if dropped:
            self.packets_dropped += 1
            out = []
        return ForwardingResult(
            out_ports=tuple(out),
            dropped=dropped,
            sent_to_controller=punted,
            matched_rule=rule,
            packet=packet,
        )

    def process_frame(self, in_port: int, frame: bytes, now: float = 0.0) -> ForwardingResult:
        """Run one frame through the pipeline; returns what happened."""
        if in_port not in self._ports:
            raise ValueError(f"frame arrived on unknown port {in_port}")
        packet = decode(frame)
        self.packets_processed += 1
        if packet.src_mac:
            self._mac_table[packet.src_mac] = in_port
        rule = self.table.lookup(packet, in_port)
        if rule is not None:
            rule.record_hit(packet.size, now)
            return self._apply_actions(rule.actions, in_port, packet, rule=rule, punted=False)
        # Table miss: punt to the controller if attached, else flood.
        self.table_misses += 1
        if self._controller is not None:
            actions = self._controller.handle_packet_in(
                self, PacketIn(in_port=in_port, packet=packet, frame=frame, timestamp=now)
            )
            return self._apply_actions(
                tuple(actions), in_port, packet, rule=None, punted=True
            )
        return self._apply_actions((Action.flood(),), in_port, packet, rule=None, punted=False)

    def install(self, rule: FlowRule) -> None:
        self.table.add(rule)

    def uninstall_cookie(self, cookie: int) -> int:
        return self.table.remove_by_cookie(cookie)
