"""OpenFlow-style match/action primitives.

A reduced but faithful model of the OpenFlow 1.x constructs the paper's
Floodlight module manipulates: wildcardable 12-tuple-ish matches, a small
action vocabulary (output / flood / drop / send-to-controller) and
flow-mod / packet-in control messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.packets.decoder import DecodedPacket

__all__ = [
    "ActionType",
    "Action",
    "FlowMatch",
    "FlowRule",
    "PacketIn",
    "FlowMod",
    "FlowModCommand",
]


class ActionType(Enum):
    OUTPUT = "output"
    FLOOD = "flood"
    DROP = "drop"
    CONTROLLER = "controller"


@dataclass(frozen=True)
class Action:
    """One forwarding action; ``port`` only meaningful for OUTPUT."""

    type: ActionType
    port: int | None = None

    @classmethod
    def output(cls, port: int) -> "Action":
        return cls(type=ActionType.OUTPUT, port=port)

    @classmethod
    def flood(cls) -> "Action":
        return cls(type=ActionType.FLOOD)

    @classmethod
    def drop(cls) -> "Action":
        return cls(type=ActionType.DROP)

    @classmethod
    def controller(cls) -> "Action":
        return cls(type=ActionType.CONTROLLER)


@dataclass(frozen=True)
class FlowMatch:
    """A wildcardable match over the fields the gateway filters on.

    ``None`` fields are wildcards.  MAC addresses are the primary handle —
    the paper identifies device traffic by (static) MAC address.
    """

    in_port: int | None = None
    eth_src: str | None = None
    eth_dst: str | None = None
    is_ip: bool | None = None
    ip_src: str | None = None
    ip_dst: str | None = None
    is_tcp: bool | None = None
    is_udp: bool | None = None
    tp_src: int | None = None
    tp_dst: int | None = None

    def matches(self, packet: DecodedPacket, in_port: int) -> bool:
        """Does this match cover the given decoded packet on ``in_port``?"""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.eth_src is not None and packet.src_mac != self.eth_src:
            return False
        if self.eth_dst is not None and packet.dst_mac != self.eth_dst:
            return False
        if self.is_ip is not None and packet.is_ip != self.is_ip:
            return False
        if self.ip_src is not None and packet.src_ip != self.ip_src:
            return False
        if self.ip_dst is not None and packet.dst_ip != self.ip_dst:
            return False
        if self.is_tcp is not None and packet.is_tcp != self.is_tcp:
            return False
        if self.is_udp is not None and packet.is_udp != self.is_udp:
            return False
        if self.tp_src is not None and packet.src_port != self.tp_src:
            return False
        if self.tp_dst is not None and packet.dst_port != self.tp_dst:
            return False
        return True

    def specificity(self) -> int:
        """Number of concrete (non-wildcard) fields, for tie-breaking."""
        return sum(
            value is not None
            for value in (
                self.in_port,
                self.eth_src,
                self.eth_dst,
                self.is_ip,
                self.ip_src,
                self.ip_dst,
                self.is_tcp,
                self.is_udp,
                self.tp_src,
                self.tp_dst,
            )
        )


@dataclass
class FlowRule:
    """A flow-table entry: match + actions + priority + statistics."""

    match: FlowMatch
    actions: tuple[Action, ...]
    priority: int = 100
    idle_timeout: float | None = None
    cookie: int = 0
    packet_count: int = field(default=0, repr=False)
    byte_count: int = field(default=0, repr=False)
    last_used: float = field(default=0.0, repr=False)

    def record_hit(self, size: int, now: float) -> None:
        self.packet_count += 1
        self.byte_count += size
        self.last_used = now

    @property
    def drops(self) -> bool:
        return any(action.type is ActionType.DROP for action in self.actions)


class FlowModCommand(Enum):
    ADD = "add"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """Controller → switch flow-table modification."""

    command: FlowModCommand
    rule: FlowRule


@dataclass(frozen=True)
class PacketIn:
    """Switch → controller table-miss notification."""

    in_port: int
    packet: DecodedPacket
    frame: bytes
    timestamp: float
