"""Enforcement rules and the hash-table rule cache (Fig. 2 / Sect. V).

An :class:`EnforcementRule` binds a device MAC to its isolation level and
— for *restricted* devices — the set of permitted remote endpoints.  The
Security Gateway stores rules in an :class:`EnforcementRuleCache`, a hash
table keyed by MAC "to minimize the lookup time as the enforcement rule
cache grows", with optional capacity bounding and unused-rule eviction,
plus the memory accounting the Fig. 6c benchmark measures.

Sect. V also notes that the filtering mechanism extends "up to the level
of individual flows": :class:`FlowPolicy` entries attached to a rule
refine the per-device decision per (protocol, destination port), e.g.
"this camera may speak RTSP to its cloud but nothing else".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .overlay import IsolationLevel

__all__ = ["FlowPolicy", "EnforcementRule", "EnforcementRuleCache"]


@dataclass(frozen=True)
class FlowPolicy:
    """A flow-granular refinement of a device's enforcement rule.

    ``None`` fields are wildcards.  ``allow`` decides the verdict when the
    policy matches; policies are evaluated in order and the first match
    wins, with the device-level decision as the fallback.
    """

    allow: bool
    protocol: str | None = None  # "tcp" | "udp" | None
    dst_port: int | None = None
    dst_ip: str | None = None

    def __post_init__(self) -> None:
        if self.protocol not in (None, "tcp", "udp"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.dst_port is not None and not 0 <= self.dst_port <= 65535:
            raise ValueError(f"invalid port {self.dst_port}")

    def matches(self, *, is_tcp: bool, is_udp: bool, dst_port: int | None, dst_ip: str | None) -> bool:
        if self.protocol == "tcp" and not is_tcp:
            return False
        if self.protocol == "udp" and not is_udp:
            return False
        if self.dst_port is not None and dst_port != self.dst_port:
            return False
        if self.dst_ip is not None and dst_ip != self.dst_ip:
            return False
        return True

    def key(self) -> str:
        port = self.dst_port if self.dst_port is not None else "*"
        return f"{int(self.allow)}|{self.protocol or '*'}|{port}|{self.dst_ip or '*'}"

#: Approximate bytes of cache overhead per stored rule (dict slot, object
#: header, key) used by the memory model; endpoint strings are counted
#: individually.  Calibrated so 20k single-endpoint rules ≈ a few MB, the
#: magnitude Fig. 6c reports on the Raspberry Pi deployment.
_RULE_BASE_BYTES = 96
_ENDPOINT_BYTES = 24


@dataclass(frozen=True)
class EnforcementRule:
    """Per-device enforcement decision, as cached by the gateway."""

    device_mac: str
    level: IsolationLevel
    permitted_ips: frozenset[str] = frozenset()
    flow_policies: tuple[FlowPolicy, ...] = ()

    def __post_init__(self) -> None:
        if self.level is not IsolationLevel.RESTRICTED and self.permitted_ips:
            raise ValueError("permitted IPs only apply to RESTRICTED rules")

    @property
    def hash_value(self) -> str:
        """Stable digest used as the rule's storage key (cf. Fig. 2)."""
        material = "|".join(
            (
                self.device_mac,
                self.level.value,
                ",".join(sorted(self.permitted_ips)),
                ",".join(policy.key() for policy in self.flow_policies),
            )
        )
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def flow_verdict(
        self,
        *,
        is_tcp: bool,
        is_udp: bool,
        dst_port: int | None,
        dst_ip: str | None,
    ) -> bool | None:
        """First-matching flow policy's verdict, or None (fall back)."""
        for policy in self.flow_policies:
            if policy.matches(is_tcp=is_tcp, is_udp=is_udp, dst_port=dst_port, dst_ip=dst_ip):
                return policy.allow
        return None

    def memory_bytes(self) -> int:
        """Approximate resident size for the gateway memory model."""
        return (
            _RULE_BASE_BYTES
            + _ENDPOINT_BYTES * len(self.permitted_ips)
            + _ENDPOINT_BYTES * len(self.flow_policies)
        )


@dataclass
class EnforcementRuleCache:
    """MAC-keyed hash table of enforcement rules with O(1) lookup.

    ``capacity`` (if set) bounds the rule count; inserting beyond it evicts
    the least-recently-used rule, implementing "removing unused enforcement
    rules ... from the cache" (Sect. V).
    """

    capacity: int | None = None
    _rules: dict[str, EnforcementRule] = field(default_factory=dict)
    _last_used: dict[str, float] = field(default_factory=dict)
    _clock: float = 0.0
    hits: int = 0
    misses: int = 0

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, mac: str) -> bool:
        return mac in self._rules

    def _tick(self) -> float:
        self._clock += 1.0
        return self._clock

    def insert(self, rule: EnforcementRule) -> None:
        if self.capacity is not None and rule.device_mac not in self._rules:
            while len(self._rules) >= self.capacity:
                self.evict_lru()
        self._rules[rule.device_mac] = rule
        self._last_used[rule.device_mac] = self._tick()

    def lookup(self, mac: str) -> EnforcementRule | None:
        rule = self._rules.get(mac)
        if rule is None:
            self.misses += 1
            return None
        self.hits += 1
        self._last_used[mac] = self._tick()
        return rule

    def remove(self, mac: str) -> bool:
        if mac in self._rules:
            del self._rules[mac]
            del self._last_used[mac]
            return True
        return False

    def evict_lru(self) -> str | None:
        """Drop the least-recently-used rule; returns its MAC."""
        if not self._rules:
            return None
        victim = min(self._last_used, key=self._last_used.get)
        self.remove(victim)
        return victim

    def memory_bytes(self) -> int:
        """Total approximate resident size of the cache contents."""
        return sum(rule.memory_bytes() for rule in self._rules.values())

    def rules(self) -> list[EnforcementRule]:
        return list(self._rules.values())
