"""Isolation levels and the trusted/untrusted virtual network overlays.

Implements the policy of Fig. 3: after identification, every device is
assigned *strict*, *restricted* or *trusted*; strict and restricted devices
live in the untrusted overlay, trusted devices in the trusted overlay.
Communication is permitted only within an overlay, plus — per level —
towards the Internet (restricted: an allow-list of vendor-cloud endpoints;
trusted: unrestricted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["IsolationLevel", "OverlayManager", "PolicyDecision"]


class IsolationLevel(Enum):
    """The three enforcement levels of Sect. V (Fig. 3)."""

    STRICT = "strict"
    RESTRICTED = "restricted"
    TRUSTED = "trusted"

    @property
    def overlay(self) -> str:
        """Which virtual overlay the level places a device in."""
        return "trusted" if self is IsolationLevel.TRUSTED else "untrusted"


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of an overlay policy check."""

    allowed: bool
    reason: str


@dataclass
class OverlayManager:
    """Tracks overlay membership and answers reachability questions."""

    local_subnet_prefix: str = "192.168."
    _levels: dict[str, IsolationLevel] = field(default_factory=dict)
    _allowed_endpoints: dict[str, frozenset[str]] = field(default_factory=dict)

    def assign(
        self,
        mac: str,
        level: IsolationLevel,
        allowed_endpoints: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        """Place a device (by MAC) at an isolation level.

        ``allowed_endpoints`` is the restricted level's permitted remote IP
        set (the vendor cloud service addresses of Fig. 2).
        """
        if level is not IsolationLevel.RESTRICTED and allowed_endpoints:
            raise ValueError("endpoint allow-lists only apply to RESTRICTED devices")
        self._levels[mac] = level
        self._allowed_endpoints[mac] = frozenset(allowed_endpoints)

    def forget(self, mac: str) -> None:
        self._levels.pop(mac, None)
        self._allowed_endpoints.pop(mac, None)

    def level_of(self, mac: str) -> IsolationLevel | None:
        return self._levels.get(mac)

    def overlay_of(self, mac: str) -> str | None:
        level = self._levels.get(mac)
        return level.overlay if level else None

    def members(self, overlay: str) -> list[str]:
        return sorted(mac for mac, lvl in self._levels.items() if lvl.overlay == overlay)

    def _is_local(self, ip: str | None) -> bool:
        return bool(ip) and ip.startswith(self.local_subnet_prefix)

    def check_device_to_device(self, src_mac: str, dst_mac: str) -> PolicyDecision:
        """May two local devices talk? Only within the same overlay."""
        src, dst = self._levels.get(src_mac), self._levels.get(dst_mac)
        if src is None or dst is None:
            return PolicyDecision(False, "unknown device: default-deny")
        if src.overlay == dst.overlay:
            return PolicyDecision(True, f"same overlay ({src.overlay})")
        return PolicyDecision(False, f"overlay isolation ({src.overlay} -> {dst.overlay})")

    def check_internet(self, src_mac: str, dst_ip: str) -> PolicyDecision:
        """May a device reach a remote (non-local) address?"""
        level = self._levels.get(src_mac)
        if level is None:
            return PolicyDecision(False, "unknown device: default-deny")
        if self._is_local(dst_ip):
            raise ValueError(f"{dst_ip} is local; use check_device_to_device")
        if level is IsolationLevel.TRUSTED:
            return PolicyDecision(True, "trusted: full Internet access")
        if level is IsolationLevel.STRICT:
            return PolicyDecision(False, "strict: no Internet access")
        if dst_ip in self._allowed_endpoints.get(src_mac, frozenset()):
            return PolicyDecision(True, "restricted: permitted cloud endpoint")
        return PolicyDecision(False, "restricted: endpoint not in allow-list")
