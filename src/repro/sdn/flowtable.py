"""Priority-ordered flow table with idle-timeout expiry."""

from __future__ import annotations

from repro.packets.decoder import DecodedPacket

from .openflow import FlowRule

__all__ = ["FlowTable"]


class FlowTable:
    """The switch's rule store.

    Lookup returns the highest-priority matching rule (most-specific match
    wins ties), mirroring OpenFlow semantics.  For any given flow there is
    only one matching enforcement rule by construction (Sect. V), so the
    common path is a short scan of the per-MAC bucket.
    """

    def __init__(self) -> None:
        self._rules: list[FlowRule] = []

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def add(self, rule: FlowRule) -> None:
        self._rules.append(rule)
        self._rules.sort(key=lambda r: (-r.priority, -r.match.specificity()))

    def remove(self, rule: FlowRule) -> None:
        self._rules.remove(rule)

    def remove_by_cookie(self, cookie: int) -> int:
        """Delete all rules carrying ``cookie``; returns count removed."""
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.cookie != cookie]
        return before - len(self._rules)

    def lookup(self, packet: DecodedPacket, in_port: int) -> FlowRule | None:
        for rule in self._rules:
            if rule.match.matches(packet, in_port):
                return rule
        return None

    def expire_idle(self, now: float) -> list[FlowRule]:
        """Remove rules idle past their timeout; returns the evicted ones."""
        expired = [
            rule
            for rule in self._rules
            if rule.idle_timeout is not None and now - rule.last_used > rule.idle_timeout
        ]
        for rule in expired:
            self._rules.remove(rule)
        return expired
