"""Attack scenario generators and the containment harness.

Each scenario yields raw Ethernet frames exactly as a compromised device
(or a remote attacker) would emit them; :func:`run_attack` pushes them
through the gateway's real data plane and reports what got through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.gateway.gateway import SecurityGateway
from repro.packets import builder

__all__ = [
    "AttackScenario",
    "DataExfiltration",
    "LateralPortScan",
    "C2Beacon",
    "InboundRemoteAccess",
    "AttackReport",
    "run_attack",
]


@dataclass(frozen=True)
class AttackScenario:
    """Base class: a named generator of attack frames.

    ``from_wan`` marks frames that arrive on the Internet uplink instead
    of a device port (inbound attacks).
    """

    name: str = field(default="attack", init=False)
    from_wan: bool = False

    def frames(self, rng: np.random.Generator) -> Iterator[bytes]:
        raise NotImplementedError


@dataclass(frozen=True)
class DataExfiltration(AttackScenario):
    """Goal (a): ship data/credentials to an attacker-controlled host."""

    device_mac: str = ""
    device_ip: str = ""
    gateway_mac: str = ""
    drop_host_ip: str = "52.250.99.1"
    bursts: int = 10

    name = "data-exfiltration"

    def frames(self, rng: np.random.Generator) -> Iterator[bytes]:
        for i in range(self.bursts):
            yield builder.https_client_hello_frame(
                self.device_mac,
                self.gateway_mac,
                self.device_ip,
                self.drop_host_ip,
                "cdn-telemetry.example",
                src_port=49900 + i,
            )
            yield builder.tcp_raw_frame(
                self.device_mac,
                self.gateway_mac,
                self.device_ip,
                self.drop_host_ip,
                49900 + i,
                443,
                bytes(int(rng.integers(200, 800))),
            )


@dataclass(frozen=True)
class LateralPortScan(AttackScenario):
    """Goal (b): probe another local device for exploitable services."""

    device_mac: str = ""
    device_ip: str = ""
    target_mac: str = ""
    target_ip: str = ""
    ports: tuple[int, ...] = (22, 23, 80, 443, 554, 1900, 8080, 9999)

    name = "lateral-port-scan"

    def frames(self, rng: np.random.Generator) -> Iterator[bytes]:
        for i, port in enumerate(self.ports):
            yield builder.tcp_syn_frame(
                self.device_mac,
                self.target_mac,
                self.device_ip,
                self.target_ip,
                49500 + i,
                port,
            )


@dataclass(frozen=True)
class C2Beacon(AttackScenario):
    """Command-and-control heartbeat to the attacker's server."""

    device_mac: str = ""
    device_ip: str = ""
    gateway_mac: str = ""
    c2_ip: str = "52.251.0.7"
    beacons: int = 6

    name = "c2-beacon"

    def frames(self, rng: np.random.Generator) -> Iterator[bytes]:
        for i in range(self.beacons):
            yield builder.udp_raw_frame(
                self.device_mac,
                self.gateway_mac,
                self.device_ip,
                self.c2_ip,
                53000 + i,
                4444,
                bytes(int(rng.integers(16, 48))),
            )


@dataclass(frozen=True)
class InboundRemoteAccess(AttackScenario):
    """Goal (c): remote attacker connects in (post NAT hole punching)."""

    attacker_mac: str = "de:ad:be:ef:00:01"
    attacker_ip: str = "52.66.6.6"
    target_mac: str = ""
    target_ip: str = ""
    attempts: int = 5
    from_wan: bool = True

    name = "inbound-remote-access"

    def frames(self, rng: np.random.Generator) -> Iterator[bytes]:
        for i in range(self.attempts):
            yield builder.tcp_syn_frame(
                self.attacker_mac,
                self.target_mac,
                self.attacker_ip,
                self.target_ip,
                40000 + i,
                int(rng.choice((23, 80, 8080, 49152))),
            )


@dataclass
class AttackReport:
    """Outcome of replaying one scenario against a gateway."""

    scenario: str
    frames_sent: int = 0
    frames_dropped: int = 0
    frames_delivered: int = 0

    @property
    def contained(self) -> bool:
        """True when nothing the attacker sent reached its destination."""
        return self.frames_sent > 0 and self.frames_delivered == 0

    @property
    def containment_rate(self) -> float:
        if self.frames_sent == 0:
            return 1.0
        return self.frames_dropped / self.frames_sent


def run_attack(
    gateway: SecurityGateway,
    scenario: AttackScenario,
    *,
    start_time: float = 1000.0,
    rng: np.random.Generator | None = None,
) -> AttackReport:
    """Replay a scenario through the gateway's data plane."""
    rng = rng or np.random.default_rng()
    report = AttackReport(scenario=scenario.name)
    now = start_time
    for frame in scenario.frames(rng):
        if scenario.from_wan:
            result = gateway.process_wan_frame(frame, now)
        else:
            from repro.packets import decode

            result = gateway.process_frame(decode(frame).src_mac, frame, now)
        report.frames_sent += 1
        if result.dropped:
            report.frames_dropped += 1
        elif result.delivered:
            report.frames_delivered += 1
        now += 0.2
    return report
