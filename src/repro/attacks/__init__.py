"""Adversary simulation (the Sect. II threat model, made executable).

Generates the attack traffic an adversary would emit from or towards a
compromised IoT device — data exfiltration, lateral movement, C2
beaconing, NAT-hole-punched inbound access — and replays it against a
:class:`~repro.gateway.gateway.SecurityGateway` to measure containment.
"""

from .scenarios import (
    AttackReport,
    AttackScenario,
    C2Beacon,
    DataExfiltration,
    InboundRemoteAccess,
    LateralPortScan,
    run_attack,
)

__all__ = [
    "AttackReport",
    "AttackScenario",
    "C2Beacon",
    "DataExfiltration",
    "InboundRemoteAccess",
    "LateralPortScan",
    "run_attack",
]
