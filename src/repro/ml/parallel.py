"""Deterministic seeding and parallel execution for training.

This module sits at the bottom of the ML layer (below ``repro.core``,
which builds the identifier on top of it — see the layering DAG in
``docs/static-analysis.md``).  The classifier bank trains one independent
Random Forest per device type, which makes training embarrassingly
parallel — but naive parallelism over a *shared* random generator would
make results depend on worker count and scheduling order.  The helpers
here decouple the two concerns:

* every unit of work gets its **own** :class:`numpy.random.Generator`,
  derived from the identifier's base entropy plus a stable hash of the
  work item's label via :class:`numpy.random.SeedSequence`, so the
  trained models are byte-identical for any ``n_jobs`` (and for
  :meth:`~repro.core.identifier.DeviceIdentifier.add_type` vs.
  :meth:`~repro.core.identifier.DeviceIdentifier.fit`);
* :func:`parallel_map` runs the work through a ``concurrent.futures``
  thread pool (order-preserving, exception-propagating) or serially when
  ``n_jobs`` is 1/None.

Threads rather than processes: the workload is numpy-heavy (releases the
GIL in the expensive kernels) and the registry / model objects would be
costly to pickle across process boundaries.

Instrumented with ``repro.obs``: each :func:`parallel_map` call runs in
a ``parallel.map`` span with one ``parallel.task`` span per item
(carrying its worker-thread name, from which worker utilisation can be
computed) — see ``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

import numpy as np

from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.obs import names as obs_names
from repro.obs import span as obs_span

__all__ = [
    "derive_entropy",
    "label_seed_sequence",
    "label_rng",
    "spawn_generators",
    "resolve_n_jobs",
    "parallel_map",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def derive_entropy(
    random_state: int | np.random.Generator | np.random.SeedSequence | None,
) -> int:
    """Reduce any accepted ``random_state`` to a single integer entropy.

    * int — used as-is (the reproducible path);
    * Generator — one 63-bit draw, so repeated constructions from a shared
      generator (e.g. the cross-validation harness) stay distinct;
    * SeedSequence — its entropy pool, hashed to one word;
    * None — fresh OS entropy.
    """
    if isinstance(random_state, (int, np.integer)):
        return int(random_state)
    if isinstance(random_state, np.random.Generator):
        return int(random_state.integers(0, 2**63))
    if isinstance(random_state, np.random.SeedSequence):
        return int(random_state.generate_state(1, np.uint64)[0])
    if random_state is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    raise TypeError(f"unsupported random_state: {type(random_state).__name__}")


def label_seed_sequence(entropy: int, label: str) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` unique to ``(entropy, label)``.

    The label contributes through a SHA-256 digest, so the sequence depends
    only on the pair — not on how many other labels exist, the order they
    are trained in, or which worker picks the job up.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    words = [int.from_bytes(digest[i : i + 8], "little") for i in range(0, 32, 8)]
    return np.random.SeedSequence([entropy & (2**64 - 1), *words])


def label_rng(entropy: int, label: str) -> np.random.Generator:
    """A generator seeded by :func:`label_seed_sequence`."""
    return np.random.default_rng(label_seed_sequence(entropy, label))


def spawn_generators(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """``n`` independent child generators drawn deterministically from ``rng``.

    Children are seeded from integer draws on the parent stream (not
    :meth:`~numpy.random.Generator.spawn`, which needs numpy ≥ 1.25), so the
    result depends only on the parent's state — never on worker count.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    seeds = rng.integers(0, 2**63, size=n)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Worker count for ``n_jobs``: None/1 ⇒ serial, -1 ⇒ all cores."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError("n_jobs must be a positive integer, -1, or None")
    return int(n_jobs)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T] | Sequence[_T],
    *,
    n_jobs: int | None = None,
) -> list[_R]:
    """``[fn(item) for item in items]``, optionally on a thread pool.

    Output order always matches input order and the first worker exception
    is re-raised in the caller, so swapping ``n_jobs`` can never change
    semantics — only wall-clock time.
    """
    work = list(items)
    workers = min(resolve_n_jobs(n_jobs), len(work))
    obs_gauge(obs_names.METRIC_PARALLEL_WORKERS).set(workers)
    obs_counter(obs_names.METRIC_PARALLEL_ITEMS).inc(len(work))

    def run(index_item: tuple[int, _T]) -> _R:
        index, item = index_item
        with obs_span(
            obs_names.SPAN_PARALLEL_TASK,
            index=index,
            thread=threading.current_thread().name,
        ):
            return fn(item)

    with obs_span(obs_names.SPAN_PARALLEL_MAP, workers=workers, items=len(work)):
        if workers <= 1:
            return [run(pair) for pair in enumerate(work)]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run, enumerate(work)))
