"""Gini feature importance for trees and forests.

Lets an operator ask *which of the 23 Table-I features (at which packet
position) the classifier bank actually keys on* — useful both for sanity
(payload-free features only) and for the paper's observation that
behavioural structure, not any single field, drives identification.
"""

from __future__ import annotations

import numpy as np

from .forest import RandomForestClassifier
from .tree import DecisionTreeClassifier, _Node

__all__ = ["tree_feature_importance", "forest_feature_importance"]


def _walk(node: _Node, counts: np.ndarray) -> None:
    if node.is_leaf:
        return
    counts[node.feature] += 1.0
    assert node.left is not None and node.right is not None
    _walk(node.left, counts)
    _walk(node.right, counts)


def tree_feature_importance(tree: DecisionTreeClassifier, n_features: int) -> np.ndarray:
    """Split-count importance per feature, normalized to sum to 1.

    (Split counts rather than impurity-decrease keep the computation
    independent of retained training data; for shallow fingerprint trees
    the two rank features nearly identically.)
    """
    if tree._root is None:
        raise ValueError("tree is not fitted")
    counts = np.zeros(n_features)
    _walk(tree._root, counts)
    total = counts.sum()
    return counts / total if total > 0 else counts


def forest_feature_importance(
    forest: RandomForestClassifier, n_features: int
) -> np.ndarray:
    """Mean per-tree importance across the ensemble."""
    if not forest.trees_:
        raise ValueError("forest is not fitted")
    return np.mean(
        [tree_feature_importance(tree, n_features) for tree in forest.trees_], axis=0
    )
