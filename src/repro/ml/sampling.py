"""Class-imbalance-aware negative sampling (Sect. IV-B.1 / [22]).

When training the binary classifier for device type ``D_i``, the paper
uses *all* ``n`` positive fingerprints and only ``10·n`` fingerprints drawn
from the complement set, to avoid imbalanced-class learning issues.
"""

from __future__ import annotations

import numpy as np

__all__ = ["negative_subsample", "build_binary_training_set"]


def negative_subsample(
    negatives: np.ndarray,
    n_positive: int,
    *,
    ratio: int = 10,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Select ``min(ratio * n_positive, len(negatives))`` negative rows."""
    if n_positive < 1:
        raise ValueError("need at least one positive sample")
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    rng = rng or np.random.default_rng()
    target = min(ratio * n_positive, len(negatives))
    indices = rng.choice(len(negatives), size=target, replace=False)
    return negatives[indices]


def build_binary_training_set(
    positives: np.ndarray,
    negatives: np.ndarray,
    *,
    ratio: int = 10,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble the (x, y) matrix for one device-type classifier.

    Returns features and a boolean label vector (True = the target type).
    """
    sampled = negative_subsample(negatives, len(positives), ratio=ratio, rng=rng)
    x = np.vstack([positives, sampled])
    y = np.concatenate([np.ones(len(positives), bool), np.zeros(len(sampled), bool)])
    return x, y
