"""JSON-safe serialization for trees and forests.

A deployed IoTSSP trains classifiers in the lab and ships them to serving
instances; these helpers give every model a stable dict form (nested plain
types only) that round-trips through ``json``.
"""

from __future__ import annotations

import numpy as np

from .forest import RandomForestClassifier
from .tree import DecisionTreeClassifier, _Node

__all__ = ["tree_to_dict", "tree_from_dict", "forest_to_dict", "forest_from_dict"]

_FORMAT_VERSION = 1


def _node_to_dict(node: _Node) -> dict:
    if node.is_leaf:
        assert node.probabilities is not None
        return {"leaf": [float(p) for p in node.probabilities]}
    assert node.left is not None and node.right is not None
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(data: dict) -> _Node:
    if "leaf" in data:
        return _Node(probabilities=np.asarray(data["leaf"], dtype=np.float64))
    return _Node(
        feature=int(data["feature"]),
        threshold=float(data["threshold"]),
        left=_node_from_dict(data["left"]),
        right=_node_from_dict(data["right"]),
    )


def _classes_to_list(classes: np.ndarray) -> list:
    out = []
    for value in classes:
        if isinstance(value, (np.bool_, bool)):
            out.append(bool(value))
        elif isinstance(value, (np.integer, int)):
            out.append(int(value))
        elif isinstance(value, (np.floating, float)):
            out.append(float(value))
        else:
            out.append(str(value))
    return out


def tree_to_dict(tree: DecisionTreeClassifier) -> dict:
    """Serialize a fitted tree (structure + class order)."""
    if tree._root is None or tree.classes_ is None:
        raise ValueError("cannot serialize an unfitted tree")
    return {
        "version": _FORMAT_VERSION,
        "classes": _classes_to_list(tree.classes_),
        "root": _node_to_dict(tree._root),
    }


def tree_from_dict(data: dict) -> DecisionTreeClassifier:
    """Rebuild a fitted tree; hyper-parameters are irrelevant post-fit."""
    tree = DecisionTreeClassifier()
    tree.classes_ = np.asarray(data["classes"])
    tree._root = _node_from_dict(data["root"])
    return tree


def forest_to_dict(forest: RandomForestClassifier) -> dict:
    """Serialize a fitted forest (all member trees + class order)."""
    if not forest.trees_ or forest.classes_ is None:
        raise ValueError("cannot serialize an unfitted forest")
    return {
        "version": _FORMAT_VERSION,
        "classes": _classes_to_list(forest.classes_),
        "trees": [tree_to_dict(tree) for tree in forest.trees_],
    }


def forest_from_dict(data: dict) -> RandomForestClassifier:
    """Rebuild a fitted forest ready for :meth:`predict_proba`."""
    forest = RandomForestClassifier(n_estimators=max(1, len(data["trees"])))
    forest.classes_ = np.asarray(data["classes"])
    forest.trees_ = [tree_from_dict(t) for t in data["trees"]]
    return forest
