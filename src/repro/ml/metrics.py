"""Evaluation metrics: accuracy, per-class accuracy, confusion matrices."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["accuracy_score", "confusion_matrix", "per_class_accuracy"]


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of predictions matching the ground truth."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("length mismatch")
    if len(y_true) == 0:
        raise ValueError("empty input")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Sequence | None = None
) -> tuple[np.ndarray, list]:
    """Count matrix ``M[actual, predicted]`` plus the label order used.

    ``labels`` fixes row/column order (and admits predicted labels that
    never occur as ground truth, e.g. the "unknown device" outcome).
    """
    y_true = list(y_true)
    y_pred = list(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("length mismatch")
    if labels is None:
        labels = sorted(set(y_true) | set(y_pred), key=str)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for actual, predicted in zip(y_true, y_pred):
        matrix[index[actual], index[predicted]] += 1
    return matrix, list(labels)


def per_class_accuracy(y_true: Sequence, y_pred: Sequence) -> dict:
    """Ratio of correct identification per ground-truth class (Fig. 5)."""
    y_true = list(y_true)
    y_pred = list(y_pred)
    totals: dict = {}
    correct: dict = {}
    for actual, predicted in zip(y_true, y_pred):
        totals[actual] = totals.get(actual, 0) + 1
        if actual == predicted:
            correct[actual] = correct.get(actual, 0) + 1
    return {label: correct.get(label, 0) / count for label, count in totals.items()}
