"""Compiled (flat-array) Random Forest evaluation for fleet-scale batches.

The interpreted :class:`~repro.ml.forest.RandomForestClassifier` walks
Python ``_Node`` objects one tree at a time; at fleet scale (hundreds of
device types × batches of fingerprints) the per-node Python dispatch
dominates.  This module *compiles* a fitted forest into flat NumPy node
tables — feature index, threshold, left/right child, leaf
class-probabilities — and evaluates whole batches with ``O(depth)``
vectorized gathers instead of per-tree recursion.

Bit-exactness contract
----------------------
``CompiledForest.predict_proba`` is **byte-identical** to the interpreted
``RandomForestClassifier.predict_proba`` for any fitted forest and any
input batch.  Three properties make this hold:

* Routing uses the same ``x[:, feature] <= threshold`` float64 comparison
  (NaN routes right in both paths, because ``NaN <= t`` is false).
* Leaf probabilities are exact copies of the interpreted leaf vectors,
  pre-scattered into the forest's class order.  Scattering pads absent
  classes with ``+0.0``; since class probabilities are non-negative and
  ``v + 0.0`` is bitwise ``v`` for ``v >= 0``, padding never perturbs a
  column.
* Per-tree accumulation is a *sequential* ``total += proba_t`` loop in
  tree order followed by one division — the exact operation sequence of
  the interpreted path.  Pairwise-summation reductions
  (``np.sum(axis=...)``, ``np.add.reduce``) are deliberately avoided:
  they re-associate the adds and change low-order bits.

:class:`CompiledBank` extends the same idea across the *entire* classifier
bank: every tree of every per-type forest lives in one global node table,
so stage-1 classification of a batch is a single depth-bounded traversal
for all types at once, then a per-forest positive-column accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .forest import RandomForestClassifier
from .tree import DecisionTreeClassifier, _Node

__all__ = [
    "CompiledForest",
    "CompiledBank",
    "compile_forest",
    "forest_from_flat",
]

#: Node-table value marking a leaf in the ``feature`` column.
_LEAF = -1


def _flatten_forest(
    forest: RandomForestClassifier,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Flatten a fitted forest into node tables.

    Returns ``(feature, threshold, left, right, proba, tree_roots,
    max_depth)``.  ``proba`` rows are leaf class-probability vectors
    scattered into the forest's class order (zero-padded for classes the
    tree never saw); internal-node rows are zero.  Child indices are
    global into the node table.
    """
    if not forest.trees_ or forest.classes_ is None:
        raise RuntimeError("forest is not fitted")
    n_classes = len(forest.classes_)
    features: list[int] = []
    thresholds: list[float] = []
    lefts: list[int] = []
    rights: list[int] = []
    probas: list[np.ndarray] = []
    roots: list[int] = []
    max_depth = 0
    zero_row = np.zeros(n_classes)
    for tree in forest.trees_:
        root = tree._root
        if root is None or tree.classes_ is None:
            raise RuntimeError("tree is not fitted")
        # Map this tree's class order onto the forest's (same mapping the
        # interpreted forest applies per prediction).
        columns = np.searchsorted(forest.classes_, tree.classes_)
        roots.append(len(features))
        # Iterative preorder walk; children are emitted after their parent
        # and back-patched, so deep trees never hit the recursion limit.
        stack: list[tuple[_Node, int, int]] = [(root, -1, 0)]
        while stack:
            node, parent, depth = stack.pop()
            index = len(features)
            max_depth = max(max_depth, depth)
            if parent >= 0:
                # Parent pushed right first, so the left child is emitted
                # first and claims the still-unset slot.
                if lefts[parent] < 0:
                    lefts[parent] = index
                else:
                    rights[parent] = index
            if node.is_leaf:
                assert node.probabilities is not None
                row = zero_row.copy()
                row[columns] = node.probabilities
                features.append(_LEAF)
                thresholds.append(0.0)
                lefts.append(index)
                rights.append(index)
                probas.append(row)
            else:
                assert node.left is not None and node.right is not None
                features.append(node.feature)
                thresholds.append(node.threshold)
                lefts.append(-1)
                rights.append(-1)
                probas.append(zero_row)
                stack.append((node.right, index, depth + 1))
                stack.append((node.left, index, depth + 1))
    return (
        np.asarray(features, dtype=np.int32),
        np.asarray(thresholds, dtype=np.float64),
        np.asarray(lefts, dtype=np.int32),
        np.asarray(rights, dtype=np.int32),
        np.asarray(probas, dtype=np.float64),
        np.asarray(roots, dtype=np.int32),
        max_depth,
    )


def _route(
    x: np.ndarray,
    indices: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    max_depth: int,
) -> np.ndarray:
    """Route every (row, tree) pair from its root to a leaf index.

    ``indices`` is ``(rows, trees)`` of current node positions; each of
    the ``max_depth`` iterations advances every still-internal position by
    one level with four vectorized gathers, so cost scales with depth and
    batch size, never with node count.
    """
    rows = np.arange(len(x))[:, None]
    for _ in range(max_depth):
        feat = feature[indices]
        active = feat >= 0
        if not active.any():
            break
        values = x[rows, np.where(active, feat, 0)]
        go_left = values <= threshold[indices]
        children = np.where(go_left, left[indices], right[indices])
        indices = np.where(active, children, indices)
    return indices


@dataclass(frozen=True)
class CompiledForest:
    """A fitted forest flattened into node tables (see module docstring).

    Produced by :func:`compile_forest`; also the exchange format the npz
    model store serializes (every field is a plain array or scalar).
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    proba: np.ndarray
    tree_roots: np.ndarray
    classes_: np.ndarray
    max_depth: int

    @property
    def n_trees(self) -> int:
        return len(self.tree_roots)

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Byte-identical to the interpreted forest's ``predict_proba``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D array")
        start = np.broadcast_to(self.tree_roots, (len(x), self.n_trees))
        leaves = _route(
            x, start, self.feature, self.threshold, self.left, self.right, self.max_depth
        )
        total = np.zeros((len(x), len(self.classes_)))
        # Sequential per-tree adds in tree order: the interpreted path's
        # exact float operation sequence (see module docstring).
        for t in range(self.n_trees):
            total += self.proba[leaves[:, t]]
        return total / self.n_trees

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(x), axis=1)]


def compile_forest(forest: RandomForestClassifier) -> CompiledForest:
    """Compile a fitted forest into a :class:`CompiledForest`."""
    feature, threshold, left, right, proba, roots, max_depth = _flatten_forest(forest)
    return CompiledForest(
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        proba=proba,
        tree_roots=roots,
        classes_=np.asarray(forest.classes_),
        max_depth=max_depth,
    )


def forest_from_flat(
    compiled: CompiledForest,
    *,
    n_estimators: int | None = None,
    max_depth: int | None = None,
) -> RandomForestClassifier:
    """Rebuild an interpreted forest from its compiled form.

    The rebuilt trees carry the *forest's* class order (leaf vectors were
    scattered into it at compile time), which leaves the forest-level
    ``predict_proba`` byte-identical to the original: the scatter only
    zero-pads non-negative probabilities.
    """
    forest = RandomForestClassifier(
        n_estimators=n_estimators if n_estimators is not None else max(1, compiled.n_trees),
        max_depth=max_depth,
    )
    forest.classes_ = np.asarray(compiled.classes_)
    trees: list[DecisionTreeClassifier] = []
    for root in compiled.tree_roots:
        tree = DecisionTreeClassifier(max_depth=max_depth)
        tree.classes_ = np.asarray(compiled.classes_)
        tree._root = _rebuild_node(compiled, int(root))
        trees.append(tree)
    forest.trees_ = trees
    return forest


def _rebuild_node(compiled: CompiledForest, index: int) -> _Node:
    """Rebuild the ``_Node`` subtree rooted at ``index`` (iteratively)."""
    nodes: dict[int, _Node] = {}
    stack = [index]
    order: list[int] = []
    while stack:
        i = stack.pop()
        order.append(i)
        if compiled.feature[i] != _LEAF:
            stack.append(int(compiled.left[i]))
            stack.append(int(compiled.right[i]))
    for i in reversed(order):
        if compiled.feature[i] == _LEAF:
            nodes[i] = _Node(probabilities=compiled.proba[i].copy())
        else:
            nodes[i] = _Node(
                feature=int(compiled.feature[i]),
                threshold=float(compiled.threshold[i]),
                left=nodes[int(compiled.left[i])],
                right=nodes[int(compiled.right[i])],
            )
    return nodes[index]


class CompiledBank:
    """Every per-type forest's trees in one node table (stage-1 hot path).

    ``positive_proba`` classifies a whole batch against the whole bank
    with a single depth-bounded traversal: node positions live in a
    ``(rows, total_trees)`` matrix, so one gather advances every tree of
    every type's forest by one level.  Per-forest positive-class
    probabilities are then accumulated tree-by-tree (sequentially, for
    bit-exactness with the interpreted forests) and divided once.

    Forests whose training data never contained the positive class are
    excluded — the interpreted stage-1 loop skips them too.
    """

    def __init__(self, forests: list[tuple[str, RandomForestClassifier]]) -> None:
        self.labels: list[str] = []
        features: list[np.ndarray] = []
        thresholds: list[np.ndarray] = []
        lefts: list[np.ndarray] = []
        rights: list[np.ndarray] = []
        positives: list[np.ndarray] = []
        roots: list[np.ndarray] = []
        offsets = [0]
        max_depth = 0
        node_base = 0
        for label, forest in forests:
            if forest.classes_ is None or True not in list(forest.classes_):
                continue
            compiled = compile_forest(forest)
            positive_column = list(compiled.classes_).index(True)
            self.labels.append(label)
            features.append(compiled.feature)
            thresholds.append(compiled.threshold)
            lefts.append(compiled.left + node_base)
            rights.append(compiled.right + node_base)
            positives.append(compiled.proba[:, positive_column])
            roots.append(compiled.tree_roots + node_base)
            offsets.append(offsets[-1] + compiled.n_trees)
            max_depth = max(max_depth, compiled.max_depth)
            node_base += compiled.n_nodes
        if self.labels:
            self.feature = np.concatenate(features)
            self.threshold = np.concatenate(thresholds)
            self.left = np.concatenate(lefts)
            self.right = np.concatenate(rights)
            self.leaf_positive = np.concatenate(positives)
            self.tree_roots = np.concatenate(roots)
        else:
            self.feature = np.empty(0, dtype=np.int32)
            self.threshold = np.empty(0)
            self.left = np.empty(0, dtype=np.int32)
            self.right = np.empty(0, dtype=np.int32)
            self.leaf_positive = np.empty(0)
            self.tree_roots = np.empty(0, dtype=np.int32)
        self.forest_offsets = np.asarray(offsets, dtype=np.int64)
        self.max_depth = max_depth
        # Hot-path companions for :meth:`positive_proba`.  ``_feature_safe``
        # makes leaf rows gatherable (any in-range column works: a leaf's
        # children both self-loop).  ``_children2`` interleaves the children
        # so one gather at ``2*node + went_left`` advances a lane; a leaf
        # stores itself in both slots, which also keeps NaN inputs parked
        # on the leaf whichever way the dead comparison falls.
        self._feature_safe = np.where(self.feature >= 0, self.feature, 0).astype(np.intp)
        self._children2 = np.empty(2 * len(self.feature), dtype=np.intp)
        is_leaf = self.feature < 0
        self._children2[0::2] = np.where(is_leaf, np.arange(len(self.feature)), self.right)
        self._children2[1::2] = np.where(is_leaf, np.arange(len(self.feature)), self.left)
        self._roots = self.tree_roots.astype(np.intp)

    @property
    def n_forests(self) -> int:
        return len(self.labels)

    def positive_proba(self, x: np.ndarray) -> np.ndarray:
        """``(rows, n_forests)`` positive-class probabilities.

        Column ``j`` is byte-identical to
        ``forests[j].predict_proba(x)[:, positive_column]`` on the
        interpreted path.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D array")
        n_rows = len(x)
        out = np.zeros((n_rows, self.n_forests))
        if not self.n_forests or not n_rows:
            return out
        # Evaluate every node's split decision for every row up front with
        # one column gather and one broadcast compare (the identical
        # ``value <= threshold`` float64 comparison the interpreted trees
        # make, so NaN still routes right).  The traversal loop then needs
        # just two gathers per level: decision bit, then interleaved child.
        n_nodes = len(self.feature)
        columns = np.ascontiguousarray(x.T).take(self._feature_safe, axis=0)
        decisions = np.ascontiguousarray((columns <= self.threshold[:, None]).T)
        dflat = decisions.reshape(-1)
        row_offsets = np.arange(n_rows, dtype=np.intp)[:, None] * n_nodes
        idx = np.empty((n_rows, len(self._roots)), dtype=np.intp)
        idx[:] = self._roots
        scratch = np.empty_like(idx)
        went_left = np.empty(idx.shape, dtype=bool)
        for _ in range(self.max_depth):
            np.add(idx, row_offsets, out=scratch)
            np.take(dflat, scratch, out=went_left)
            np.left_shift(idx, 1, out=scratch)
            np.add(scratch, went_left, out=scratch, casting="unsafe")
            np.take(self._children2, scratch, out=idx)
        leaf_positive = self.leaf_positive.take(idx)
        counts = np.diff(self.forest_offsets)
        if counts.size and counts.min() == counts.max():
            # Uniform bank (every forest has the same tree count, the
            # DeviceIdentifier case): accumulate all forests' columns in
            # lockstep.  Tree order within each forest is still ascending
            # and the adds stay sequential, so every column is bit-equal
            # to the per-forest loop below.
            per_forest = int(counts[0])
            stacked = leaf_positive.reshape(n_rows, self.n_forests, per_forest)
            for t in range(per_forest):
                out += stacked[:, :, t]
            out /= per_forest
            return out
        for j in range(self.n_forests):
            lo = int(self.forest_offsets[j])
            hi = int(self.forest_offsets[j + 1])
            column = out[:, j]
            # Sequential adds in tree order, then one division — the same
            # float operation sequence as the interpreted forest.
            for t in range(lo, hi):
                column += leaf_positive[:, t]
            column /= hi - lo
        return out
