"""Stratified k-fold cross-validation (the paper's evaluation protocol).

Sect. VI-B evaluates with stratified 10-fold cross-validation repeated 10
times; :func:`stratified_kfold` yields index splits with per-class balance.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["stratified_kfold"]


def stratified_kfold(
    labels: Sequence,
    n_splits: int = 10,
    *,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_indices, test_indices)`` pairs, stratified by label.

    Each class's samples are shuffled and dealt round-robin across folds,
    so every fold holds ``~1/n_splits`` of every class.
    """
    labels = np.asarray(labels)
    if n_splits < 2:
        raise ValueError("need at least 2 folds")
    class_counts = {}
    for label in labels:
        class_counts[label] = class_counts.get(label, 0) + 1
    smallest = min(class_counts.values())
    if smallest < n_splits:
        raise ValueError(
            f"smallest class has {smallest} samples; cannot stratify into {n_splits} folds"
        )
    rng = rng or np.random.default_rng()
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for label in sorted(class_counts, key=str):
        indices = np.flatnonzero(labels == label)
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % n_splits].append(int(index))
    all_indices = np.arange(len(labels))
    for fold in folds:
        test = np.asarray(sorted(fold))
        train = np.setdiff1d(all_indices, test)
        yield train, test
