"""ML substrate: CART trees, Random Forests, sampling, metrics, CV.

A from-scratch replacement for the slice of scikit-learn the paper's
identification pipeline needs (Random Forest classification [23],
imbalance-aware sampling [22], stratified cross-validation).
"""

from .compiled import CompiledBank, CompiledForest, compile_forest, forest_from_flat
from .forest import RandomForestClassifier
from .metrics import accuracy_score, confusion_matrix, per_class_accuracy
from .parallel import (
    derive_entropy,
    label_rng,
    label_seed_sequence,
    parallel_map,
    resolve_n_jobs,
    spawn_generators,
)
from .sampling import build_binary_training_set, negative_subsample
from .tree import DecisionTreeClassifier
from .validation import stratified_kfold

__all__ = [
    "CompiledBank",
    "CompiledForest",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "accuracy_score",
    "build_binary_training_set",
    "compile_forest",
    "forest_from_flat",
    "confusion_matrix",
    "derive_entropy",
    "label_rng",
    "label_seed_sequence",
    "negative_subsample",
    "parallel_map",
    "per_class_accuracy",
    "resolve_n_jobs",
    "spawn_generators",
    "stratified_kfold",
]
