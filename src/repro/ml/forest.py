"""Random Forest classifier (Breiman 2001), the paper's reference [23].

Bootstrap-aggregated CART trees with per-split random feature subsets and
soft (probability-averaged) voting.  The IoT Security Service trains one
*binary* forest per device type, so binary classification is the hot path,
but the implementation is generically multi-class.
"""

from __future__ import annotations

import numpy as np

from .parallel import parallel_map, spawn_generators
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """An ensemble of :class:`~repro.ml.tree.DecisionTreeClassifier`.

    Parameters mirror the usual conventions: ``n_estimators`` trees, each
    fit on a bootstrap resample of the training data, combined by averaging
    leaf class-probability vectors.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | np.random.Generator | np.random.SeedSequence | None = None,
        n_jobs: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("need at least one tree")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.n_jobs = n_jobs
        self._rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_estimators`` bootstrap trees.

        Each tree draws its bootstrap sample and split randomness from a
        child generator seeded off the forest's stream *before* any tree
        is built, so fitting is reproducible and (via ``n_jobs``) trees
        can be grown concurrently without changing the resulting model.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if len(x) == 0:
            raise ValueError("cannot fit an empty dataset")
        self.classes_ = np.unique(y)
        n = len(x)

        def build(rng: np.random.Generator) -> DecisionTreeClassifier:
            if self.bootstrap:
                indices = rng.integers(0, n, size=n)
            else:
                indices = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                random_state=rng,
            )
            sample_x, sample_y = x[indices], y[indices]
            if len(np.unique(sample_y)) < len(self.classes_):
                # Keep every class represented so tree probability vectors
                # are alignable: re-draw including one guaranteed instance
                # of each missing class.
                missing = np.setdiff1d(self.classes_, np.unique(sample_y))
                extra = [np.flatnonzero(y == cls)[0] for cls in missing]
                indices = np.concatenate([indices, np.asarray(extra)])
                sample_x, sample_y = x[indices], y[indices]
            return tree.fit(sample_x, sample_y)

        tree_rngs = spawn_generators(self._rng, self.n_estimators)
        self.trees_ = parallel_map(build, tree_rngs, n_jobs=self.n_jobs)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_ or self.classes_ is None:
            raise RuntimeError("forest is not fitted")
        x = np.asarray(x, dtype=np.float64)
        total = np.zeros((len(x), len(self.classes_)))
        for tree in self.trees_:
            proba = tree.predict_proba(x)
            # Map the tree's class order onto the forest's class order.
            assert tree.classes_ is not None
            columns = np.searchsorted(self.classes_, tree.classes_)
            total[:, columns] += proba
        return total / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        return self.classes_[np.argmax(self.predict_proba(x), axis=1)]
