"""CART decision tree (gini impurity, binary splits) on numpy arrays.

This is the base learner for :mod:`repro.ml.forest`, implementing the
classification tree of Breiman's Random Forests [23] that the paper uses
for its one-classifier-per-device-type bank.  Features are numeric (the
fingerprint vectors are binary/integer); splits are of the form
``x[feature] <= threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """One tree node; leaves carry a class-probability vector."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    probabilities: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.probabilities is not None


def _gini_from_counts(counts: np.ndarray, total: float) -> float:
    if total <= 0:
        return 0.0
    fractions = counts / total
    return 1.0 - float(np.dot(fractions, fractions))


def _best_split(
    x_sorted_col: np.ndarray,
    y_sorted: np.ndarray,
    n_classes: int,
) -> tuple[float, float]:
    """Best (threshold, gini-weighted impurity) for one pre-sorted column.

    Scans the prefix class counts so each candidate threshold is evaluated
    in O(classes) after an O(n log n) sort.
    """
    n = len(y_sorted)
    one_hot = np.zeros((n, n_classes))
    one_hot[np.arange(n), y_sorted] = 1.0
    prefix = np.cumsum(one_hot, axis=0)
    total = prefix[-1]
    # Candidate split positions: where consecutive values differ.
    diffs = np.nonzero(np.diff(x_sorted_col) > 1e-12)[0]
    if len(diffs) == 0:
        return np.nan, np.inf
    left_counts = prefix[diffs]
    left_sizes = diffs + 1.0
    right_counts = total - left_counts
    right_sizes = n - left_sizes
    left_frac = left_counts / left_sizes[:, None]
    right_frac = right_counts / right_sizes[:, None]
    left_gini = 1.0 - np.einsum("ij,ij->i", left_frac, left_frac)
    right_gini = 1.0 - np.einsum("ij,ij->i", right_frac, right_frac)
    weighted = (left_sizes * left_gini + right_sizes * right_gini) / n
    best = int(np.argmin(weighted))
    position = diffs[best]
    threshold = (x_sorted_col[position] + x_sorted_col[position + 1]) / 2.0
    return float(threshold), float(weighted[best])


class DecisionTreeClassifier:
    """A CART classifier supporting random feature subsets per split.

    Parameters
    ----------
    max_depth:
        Depth limit; ``None`` grows until pure or ``min_samples_split``.
    min_samples_split:
        Minimum samples required to attempt a split.
    max_features:
        Number of candidate features per split (``None`` = all,
        ``"sqrt"`` = ⌈√d⌉, or an int).
    random_state:
        Seed or :class:`numpy.random.Generator` for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: int | str | None = "sqrt",
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self._root: _Node | None = None
        self.classes_: np.ndarray | None = None

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.ceil(np.sqrt(n_features))))
        count = int(self.max_features)
        if count < 1 or count > n_features:
            raise ValueError(f"max_features {count} out of range 1..{n_features}")
        return count

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D array")
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if len(x) == 0:
            raise ValueError("cannot fit an empty dataset")
        self.classes_, y_encoded = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        k_features = self._resolve_max_features(x.shape[1])
        self._root = self._grow(x, y_encoded, n_classes, k_features, depth=0)
        return self

    def _leaf(self, y: np.ndarray, n_classes: int) -> _Node:
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        return _Node(probabilities=counts / counts.sum())

    def _grow(
        self, x: np.ndarray, y: np.ndarray, n_classes: int, k_features: int, depth: int
    ) -> _Node:
        counts = np.bincount(y, minlength=n_classes).astype(np.float64)
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or _gini_from_counts(counts, counts.sum()) == 0.0
        ):
            return self._leaf(y, n_classes)
        candidates = self._rng.choice(x.shape[1], size=k_features, replace=False)
        best_feature, best_threshold, best_score = -1, np.nan, np.inf
        for feature in candidates:
            order = np.argsort(x[:, feature], kind="stable")
            threshold, score = _best_split(x[order, feature], y[order], n_classes)
            if score < best_score:
                best_feature, best_threshold, best_score = int(feature), threshold, score
        if best_feature < 0 or not np.isfinite(best_score):
            return self._leaf(y, n_classes)
        mask = x[:, best_feature] <= best_threshold
        if not mask.any() or mask.all():
            return self._leaf(y, n_classes)
        return _Node(
            feature=best_feature,
            threshold=best_threshold,
            left=self._grow(x[mask], y[mask], n_classes, k_features, depth + 1),
            right=self._grow(x[~mask], y[~mask], n_classes, k_features, depth + 1),
        )

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities per row.

        Traversal is batched: each node routes an index *array* left/right
        with one vectorized comparison, so cost scales with tree size
        rather than rows × depth of Python-level work.
        """
        if self._root is None or self.classes_ is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D array")
        out = np.empty((len(x), len(self.classes_)))
        if len(x) == 0:
            return out
        stack: list[tuple[_Node, np.ndarray]] = [(self._root, np.arange(len(x)))]
        while stack:
            node, indices = stack.pop()
            if node.is_leaf:
                out[indices] = node.probabilities
                continue
            assert node.left is not None and node.right is not None
            mask = x[indices, node.feature] <= node.threshold
            left_indices = indices[mask]
            right_indices = indices[~mask]
            if len(left_indices):
                stack.append((node.left, left_indices))
            if len(right_indices):
                stack.append((node.right, right_indices))
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(x)
        assert self.classes_ is not None
        return self.classes_[np.argmax(probabilities, axis=1)]

    def depth(self) -> int:
        """Actual depth of the grown tree (0 for a bare leaf)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return walk(self._root)
