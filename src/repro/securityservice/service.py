"""The IoT Security Service (IoTSSP) façade.

Combines the classifier bank (:class:`~repro.core.identifier.DeviceIdentifier`),
the vulnerability repository and the endpoint directory into the single
operation the Security Gateway consumes: fingerprint in, isolation
directive out.  New device types can be enrolled at runtime without
retraining existing classifiers (the paper's scalability property).

Instrumented with ``repro.obs``: each :meth:`~IoTSecurityService.handle_report`
runs in a ``service.handle_report`` span, with counters for reports
handled and directives issued per isolation level — see
``docs/observability.md``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.core.fingerprint import Fingerprint
from repro.core.identifier import DeviceIdentifier
from repro.core.registry import DeviceTypeRegistry
from repro.obs import counter as obs_counter
from repro.obs import names as obs_names
from repro.obs import span as obs_span

from .assessment import Assessment, assess_device_type
from .incidents import IncidentAggregator, IncidentReport
from .protocol import FingerprintReport, IsolationDirective
from .vulndb import VulnerabilityDatabase, seed_database

__all__ = ["IoTSecurityService"]


class IoTSecurityService:
    """Device-type identification + vulnerability assessment service."""

    def __init__(
        self,
        *,
        identifier: DeviceIdentifier | None = None,
        vulndb: VulnerabilityDatabase | None = None,
        endpoint_directory: Mapping[str, frozenset[str]] | None = None,
        random_state: int | np.random.Generator | None = None,
        n_jobs: int | None = None,
    ) -> None:
        self.identifier = identifier or DeviceIdentifier(random_state=random_state)
        #: Worker-pool width for bulk training (None/1 serial, -1 all cores).
        #: Trained models are identical for any value; see repro.ml.parallel.
        self.n_jobs = n_jobs
        self.vulndb = vulndb if vulndb is not None else seed_database()
        self.endpoint_directory = dict(endpoint_directory or {})
        self._registry = DeviceTypeRegistry()
        self.incidents = IncidentAggregator(vulndb=self.vulndb)
        self.reports_handled = 0

    # --- training / enrollment --------------------------------------------

    def train(self, registry: DeviceTypeRegistry) -> None:
        """Bulk-train from a labelled corpus (initial lab ground truth)."""
        self._registry = registry
        self.identifier.fit(registry, n_jobs=self.n_jobs)

    def adopt_model(self, registry: DeviceTypeRegistry, identifier: DeviceIdentifier) -> None:
        """Install a pre-trained identifier (e.g. a ModelStore warm start).

        Equivalent to :meth:`train` when ``identifier`` was fit on
        ``registry`` with the same entropy — the path the sharded front
        uses to train once and load N byte-identical shard replicas.
        """
        self._registry = registry
        self.identifier = identifier

    def enroll_type(self, label: str, fingerprints: Iterable[Fingerprint]) -> None:
        """Add one new device type incrementally (no global relearning)."""
        self._registry.add_many(label, list(fingerprints))
        self.identifier.add_type(self._registry, label)

    def retire_type(self, label: str) -> None:
        self._registry.remove_type(label)
        self.identifier.remove_type(label)

    @property
    def known_types(self) -> list[str]:
        return self.identifier.labels

    def register_endpoints(self, device_type: str, endpoints: Iterable[str]) -> None:
        """Record a type's vendor-cloud endpoints for restricted devices."""
        current = set(self.endpoint_directory.get(device_type, frozenset()))
        current.update(endpoints)
        self.endpoint_directory[device_type] = frozenset(current)

    def report_incident(self, report: IncidentReport):
        """Anonymous incident submission from a gateway (Sect. III-B).

        Returns the synthesized vulnerability record when the report
        confirms a cluster, else None.  Devices of the affected type get
        the *restricted* level from their next (or refreshed) directive.
        """
        return self.incidents.submit(report)

    # --- the service operation --------------------------------------------

    def assess_type(self, device_type: str) -> Assessment:
        return assess_device_type(
            device_type, self.vulndb, endpoint_directory=self.endpoint_directory
        )

    def handle_report(self, report: FingerprintReport) -> IsolationDirective:
        """Identify the device type and return the isolation directive.

        Deliberately ignores ``report.gateway_id`` beyond transport needs:
        the service stores nothing about its clients (Sect. III-B).
        """
        with obs_span(obs_names.SPAN_SERVICE_REPORT) as span:
            self.reports_handled += 1
            obs_counter(obs_names.METRIC_REPORTS_HANDLED).inc()
            result = self.identifier.identify(report.fingerprint)
            directive = self._directive_for(result.label)
            span.set(device_type=result.label, level=directive.level.value)
            return directive

    def handle_reports(self, reports: list[FingerprintReport]) -> list[IsolationDirective]:
        """Handle a batch of reports through one stage-1 bank pass.

        Semantically identical to mapping :meth:`handle_report` over the
        batch (``identify_batch`` is pinned against scalar ``identify``),
        but stage 1 evaluates the whole classifier bank over all stacked
        F' vectors at once — the fleet-scale path drained batches from
        ``SentinelModule.process_batch`` take.
        """
        with obs_span(obs_names.SPAN_SERVICE_BATCH, batch=len(reports)) as span:
            self.reports_handled += len(reports)
            for _ in reports:
                obs_counter(obs_names.METRIC_REPORTS_HANDLED).inc()
            results = self.identifier.identify_batch(
                [report.fingerprint for report in reports]
            )
            directives = [self._directive_for(result.label) for result in results]
            span.set(batch=len(reports))
            return directives

    def directive_for_type(self, device_type: str) -> IsolationDirective:
        """Issue a directive for an already-identified type (no classification).

        The cross-shard directive lookup: a gateway holding a verdict from
        one shard can ask any replica for the current isolation policy.
        """
        return self._directive_for(device_type)

    def _directive_for(self, label: str) -> IsolationDirective:
        assessment = self.assess_type(label)
        obs_counter(obs_names.METRIC_DIRECTIVES, level=assessment.level.value).inc()
        return IsolationDirective(
            device_type=label,
            level=assessment.level,
            permitted_endpoints=assessment.permitted_endpoints,
            vulnerability_ids=assessment.vulnerability_ids,
        )
