"""Crowdsourced incident cross-correlation (Sect. III-B).

"Crowdsourced information can also be used by cross-correlating security
incidents and related device-types as reported by Security Gateways of
affected networks."  Gateways anonymously submit :class:`IncidentReport`s
(device type + incident class, no client identity); once independent
reports for a type cross a threshold, the IoTSSP synthesizes a
vulnerability record for it, which flips the type's assessment to
*restricted* on the next directive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .vulndb import VulnerabilityDatabase, VulnerabilityRecord

__all__ = ["IncidentReport", "IncidentAggregator"]

#: Recognized incident classes and the severity a confirmed cluster implies.
INCIDENT_SEVERITY = {
    "malware-traffic": 7.5,
    "scanning-behaviour": 5.5,
    "data-exfiltration": 8.5,
    "credential-abuse": 8.0,
}


@dataclass(frozen=True)
class IncidentReport:
    """One anonymous incident observation from a Security Gateway."""

    device_type: str
    incident_class: str
    observed_year: int = 2016

    def __post_init__(self) -> None:
        if self.incident_class not in INCIDENT_SEVERITY:
            raise ValueError(f"unknown incident class {self.incident_class!r}")


@dataclass
class IncidentAggregator:
    """Threshold-based correlation of incident reports into vuln records.

    ``threshold`` independent reports of the same (type, class) pair
    produce one synthesized vulnerability entry in ``vulndb``.  Reports
    carry no gateway identity — the service stays client-stateless.
    """

    vulndb: VulnerabilityDatabase
    threshold: int = 3
    _counts: dict[tuple[str, str], int] = field(default_factory=dict)
    _confirmed: set[tuple[str, str]] = field(default_factory=set)
    reports_received: int = 0

    def submit(self, report: IncidentReport) -> VulnerabilityRecord | None:
        """Record one report; returns the new record when a cluster confirms."""
        self.reports_received += 1
        key = (report.device_type, report.incident_class)
        if key in self._confirmed:
            return None
        self._counts[key] = self._counts.get(key, 0) + 1
        if self._counts[key] < self.threshold:
            return None
        self._confirmed.add(key)
        record = VulnerabilityRecord(
            vuln_id=f"REPRO-CROWD-{len(self._confirmed):04d}",
            device_type=report.device_type,
            summary=f"crowdsourced: {report.incident_class} reported by "
            f"{self._counts[key]} independent gateways",
            severity=INCIDENT_SEVERITY[report.incident_class],
            year=report.observed_year,
        )
        self.vulndb.add(record)
        return record

    def count(self, device_type: str, incident_class: str) -> int:
        return self._counts.get((device_type, incident_class), 0)
