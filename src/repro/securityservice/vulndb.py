"""Offline CVE-like vulnerability repository.

Stands in for "querying repositories like the CVE database [7] for
vulnerability reports related to the device-type" (Sect. III-B).  Records
are synthetic but structurally faithful (id, affected device type,
severity, summary); the seed data marks a plausible subset of the Table II
devices as vulnerable so that all three isolation levels are exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VulnerabilityRecord", "VulnerabilityDatabase", "seed_database"]


@dataclass(frozen=True)
class VulnerabilityRecord:
    """One vulnerability report tied to a device type."""

    vuln_id: str
    device_type: str
    summary: str
    severity: float  # CVSS-like 0.0 - 10.0
    year: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 10.0:
            raise ValueError("severity must be within [0, 10]")


class VulnerabilityDatabase:
    """Device-type-indexed store of vulnerability records."""

    def __init__(self) -> None:
        self._by_type: dict[str, list[VulnerabilityRecord]] = {}
        self._by_id: dict[str, VulnerabilityRecord] = {}

    def add(self, record: VulnerabilityRecord) -> None:
        if record.vuln_id in self._by_id:
            raise ValueError(f"duplicate vulnerability id {record.vuln_id}")
        self._by_id[record.vuln_id] = record
        self._by_type.setdefault(record.device_type, []).append(record)

    def query(self, device_type: str) -> list[VulnerabilityRecord]:
        """All known reports for a device type (empty list = clean)."""
        return list(self._by_type.get(device_type, []))

    def is_vulnerable(self, device_type: str, *, min_severity: float = 0.0) -> bool:
        return any(r.severity >= min_severity for r in self._by_type.get(device_type, []))

    def get(self, vuln_id: str) -> VulnerabilityRecord:
        return self._by_id[vuln_id]

    def __len__(self) -> int:
        return len(self._by_id)

    @property
    def affected_types(self) -> list[str]:
        return sorted(t for t, records in self._by_type.items() if records)


#: Synthetic seed reports (ids use a non-CVE prefix to avoid masquerading
#: as real advisories).  Chosen to cover well-publicised device classes:
#: cameras with hardcoded credentials, plugs with unauthenticated local
#: control protocols, the cleartext-WiFi-credential kettle, etc.
_SEED_ROWS = (
    ("REPRO-2015-0001", "iKettle2", "WiFi PSK disclosed over unauthenticated local TCP", 8.1, 2015),
    ("REPRO-2015-0002", "SmarterCoffee", "Unauthenticated local control protocol", 7.4, 2015),
    ("REPRO-2016-0003", "EdimaxCam", "Hardcoded administrative credentials", 9.0, 2016),
    ("REPRO-2016-0004", "EdimaxPlug1101W", "Cleartext cloud registration protocol", 6.5, 2016),
    ("REPRO-2016-0005", "EdimaxPlug2101W", "Cleartext cloud registration protocol", 6.5, 2016),
    ("REPRO-2016-0006", "EdnetCam", "Unauthenticated RTSP stream exposure", 7.8, 2016),
    ("REPRO-2016-0007", "D-LinkDayCam", "Predictable session tokens in web UI", 7.1, 2016),
    ("REPRO-2016-0008", "TP-LinkPlugHS110", "Unauthenticated local port-9999 commands", 6.8, 2016),
    ("REPRO-2016-0009", "TP-LinkPlugHS100", "Unauthenticated local port-9999 commands", 6.8, 2016),
    ("REPRO-2016-0010", "WeMoSwitch", "UPnP action injection", 8.3, 2016),
    ("REPRO-2016-0011", "EdnetGateway", "Default credentials on MQTT bridge", 7.0, 2016),
    ("REPRO-2016-0012", "HomeMaticPlug", "Replayable pairing broadcast", 5.9, 2016),
)


def seed_database() -> VulnerabilityDatabase:
    """The default repository used by examples, tests and benchmarks."""
    db = VulnerabilityDatabase()
    for vuln_id, device_type, summary, severity, year in _SEED_ROWS:
        db.add(VulnerabilityRecord(vuln_id, device_type, summary, severity, year))
    return db
