"""Vulnerability assessment → isolation level policy (Sect. III-B).

"In case vulnerabilities exist, isolation level *restricted* is assigned.
If no vulnerabilities for the device-type are reported, it is assigned the
level *trusted*.  Unknown devices will be assigned the level *strict*."
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.identifier import UNKNOWN_DEVICE
from repro.sdn.overlay import IsolationLevel

from .vulndb import VulnerabilityDatabase

__all__ = ["Assessment", "assess_device_type"]


@dataclass(frozen=True)
class Assessment:
    """The IoTSSP's verdict for one device type."""

    device_type: str
    level: IsolationLevel
    permitted_endpoints: frozenset[str] = frozenset()
    vulnerability_ids: tuple[str, ...] = ()


def assess_device_type(
    device_type: str,
    vulndb: VulnerabilityDatabase,
    *,
    endpoint_directory: Mapping[str, frozenset[str]] | None = None,
    min_severity: float = 0.0,
) -> Assessment:
    """Apply the paper's three-way policy to an identified device type.

    ``endpoint_directory`` maps device types to their vendor-cloud
    endpoints; a restricted device keeps access to exactly those (Fig. 2).
    ``min_severity`` lets an operator ignore low-impact reports — only
    vulnerabilities at or above the threshold trigger *restricted*.
    """
    if device_type == UNKNOWN_DEVICE:
        return Assessment(device_type=device_type, level=IsolationLevel.STRICT)
    reports = [r for r in vulndb.query(device_type) if r.severity >= min_severity]
    if reports:
        endpoints = frozenset()
        if endpoint_directory is not None:
            endpoints = frozenset(endpoint_directory.get(device_type, frozenset()))
        return Assessment(
            device_type=device_type,
            level=IsolationLevel.RESTRICTED,
            permitted_endpoints=endpoints,
            vulnerability_ids=tuple(sorted(r.vuln_id for r in reports)),
        )
    return Assessment(device_type=device_type, level=IsolationLevel.TRUSTED)
