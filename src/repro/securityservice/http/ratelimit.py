"""Deterministic per-gateway token-bucket rate limiting.

The clock is injected (a zero-argument callable returning monotonic
seconds), mirroring the ``ManualClock`` convention the resilience stack
established: tests drive the bucket with a hand-cranked clock and get
byte-identical admit/reject sequences, and no module here ever reads
wall time itself (the server wires in ``time.monotonic``).

A bucket holds up to ``burst`` tokens and refills continuously at
``rate`` tokens/second.  A request costs one token by default; batch
submissions cost one token *per report*, so a 50-report batch draws the
same capacity as 50 single submits — the limiter prices work, not
round trips.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["RateDecision", "TokenBucket", "GatewayRateLimiter"]


@dataclass(frozen=True)
class RateDecision:
    """Outcome of one admission attempt."""

    allowed: bool
    #: Whole tokens left after this decision (floor of the float level).
    remaining: int
    #: Seconds until enough tokens will have refilled; 0.0 when allowed.
    retry_after: float


class TokenBucket:
    """One gateway's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: float, *, clock: Callable[[], float]) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def acquire(self, cost: float = 1.0) -> RateDecision:
        """Try to draw ``cost`` tokens; never blocks."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            return RateDecision(True, int(self._tokens), 0.0)
        deficit = cost - self._tokens
        return RateDecision(False, int(self._tokens), deficit / self.rate)


class GatewayRateLimiter:
    """Lazily-created per-key buckets sharing one rate/burst policy.

    Thread-safe: the serving tier calls :meth:`acquire` from
    ``ThreadingHTTPServer`` handler threads.
    """

    def __init__(
        self, rate: float, burst: float, *, clock: Callable[[], float]
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def acquire(self, key: str, cost: float = 1.0) -> RateDecision:
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
            return bucket.acquire(cost)
