"""JSON wire format for the serving tier.

Both sides of the HTTP boundary share these codecs: the server decodes
request bodies and encodes directives with them, the
:class:`~repro.securityservice.http.client.HttpTransport` does the
reverse.  Fingerprints reuse the persistence layer's
``fingerprint_to_dict``/``fingerprint_from_dict`` shape (``{"mac",
"label", "packets"}``) so a report body is the same JSON an exported
registry holds.

Anything malformed raises :class:`WireError`; the app layer maps that to
a 400 with the message in the response body, so a misbehaving client
learns *what* was wrong instead of getting a bare status code.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.persistence import fingerprint_from_dict, fingerprint_to_dict
from repro.sdn.overlay import IsolationLevel

from ..protocol import FingerprintReport, IsolationDirective

__all__ = [
    "WireError",
    "report_to_dict",
    "report_from_dict",
    "directive_to_dict",
    "directive_from_dict",
]


class WireError(ValueError):
    """A request or response body that does not parse into a message."""


def _require_mapping(data: object, what: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise WireError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def report_to_dict(report: FingerprintReport) -> dict:
    body: dict = {"fingerprint": fingerprint_to_dict(report.fingerprint)}
    if report.gateway_id is not None:
        body["gateway_id"] = report.gateway_id
    return body


def report_from_dict(data: object) -> FingerprintReport:
    mapping = _require_mapping(data, "report")
    raw = mapping.get("fingerprint")
    if raw is None:
        raise WireError("report is missing the 'fingerprint' field")
    _require_mapping(raw, "report['fingerprint']")
    try:
        fingerprint = fingerprint_from_dict(dict(raw))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed fingerprint: {exc}") from exc
    gateway_id = mapping.get("gateway_id")
    if gateway_id is not None and not isinstance(gateway_id, str):
        raise WireError("report 'gateway_id' must be a string when present")
    return FingerprintReport(fingerprint=fingerprint, gateway_id=gateway_id)


def directive_to_dict(directive: IsolationDirective) -> dict:
    return {
        "device_type": directive.device_type,
        "level": directive.level.value,
        "permitted_endpoints": sorted(directive.permitted_endpoints),
        "ttl_seconds": directive.ttl_seconds,
        "vulnerability_ids": list(directive.vulnerability_ids),
        "provisional": directive.provisional,
    }


def directive_from_dict(data: object) -> IsolationDirective:
    mapping = _require_mapping(data, "directive")
    try:
        level = IsolationLevel(mapping["level"])
    except KeyError as exc:
        raise WireError("directive is missing the 'level' field") from exc
    except ValueError as exc:
        raise WireError(f"unknown isolation level {mapping['level']!r}") from exc
    device_type = mapping.get("device_type")
    if not isinstance(device_type, str):
        raise WireError("directive 'device_type' must be a string")
    try:
        return IsolationDirective(
            device_type=device_type,
            level=level,
            permitted_endpoints=frozenset(mapping.get("permitted_endpoints", ())),
            ttl_seconds=float(mapping.get("ttl_seconds", 86400.0)),
            vulnerability_ids=tuple(mapping.get("vulnerability_ids", ())),
            provisional=bool(mapping.get("provisional", False)),
        )
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed directive: {exc}") from exc
