"""Auth-lite: per-gateway API keys.

The paper's service is client-stateless, so authentication stays
deliberately thin: a static ``gateway_id -> key`` table, presented as
``X-Gateway-Id`` / ``X-Api-Key`` headers on every ``/v1`` request.
Verification is constant-time (:func:`hmac.compare_digest`) and unknown
gateway ids burn the same comparison against a dummy key so the check
leaks nothing about which ids exist.

A registry with no keys is *open*: every request is accepted under the
gateway id it claims (or ``"anonymous"``).  That keeps local quickstarts
curl-able while letting deployments opt in with ``--api-keys``.
"""

from __future__ import annotations

import hmac
import json
from collections.abc import Mapping
from pathlib import Path

__all__ = ["ApiKeyRegistry", "ANONYMOUS_GATEWAY"]

#: Gateway identity assigned to unauthenticated requests in open mode.
ANONYMOUS_GATEWAY = "anonymous"

#: Burned on unknown-id lookups so they cost the same as wrong-key ones.
_DUMMY_KEY = "sentinel-dummy-key-for-constant-time-compare"


class ApiKeyRegistry:
    """A static per-gateway API-key table."""

    def __init__(self, keys: Mapping[str, str] | None = None) -> None:
        self._keys: dict[str, str] = dict(keys or {})

    @property
    def open(self) -> bool:
        """True when no keys are registered: authentication is disabled."""
        return not self._keys

    @property
    def gateway_ids(self) -> list[str]:
        return sorted(self._keys)

    def issue(self, gateway_id: str, key: str) -> None:
        """Register (or rotate) a gateway's key."""
        if not gateway_id:
            raise ValueError("gateway_id must be non-empty")
        if not key:
            raise ValueError("key must be non-empty")
        self._keys[gateway_id] = key

    def revoke(self, gateway_id: str) -> None:
        self._keys.pop(gateway_id, None)

    def verify(self, gateway_id: str | None, key: str | None) -> bool:
        """True when the pair authenticates (always True in open mode)."""
        if self.open:
            return True
        if not gateway_id or not key:
            return False
        expected = self._keys.get(gateway_id)
        if expected is None:
            hmac.compare_digest(_DUMMY_KEY, key)
            return False
        return hmac.compare_digest(expected, key)

    @classmethod
    def from_file(cls, path: str | Path) -> "ApiKeyRegistry":
        """Load a ``{"gateway_id": "key", ...}`` JSON table."""
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in data.items()
        ):
            raise ValueError(
                f"{path}: API-key file must be a JSON object of string -> string"
            )
        return cls(data)
