"""The socketless HTTP application: routing, auth, limits, instrumentation.

``ServiceApp.handle(method, path, headers, body)`` is a pure-ish
function from request to :class:`AppResponse` — no sockets, no threads
of its own — so every route, error path and header is unit-testable
without binding a port.  The ``server`` module adapts it onto
``ThreadingHTTPServer``; the benchmark's fault-injecting wrappers stack
on top of it the same way ``ResilientTransport`` stacks on transports.

Request processing order (each stage short-circuits):

1. route match (404 unknown path, 405 wrong method),
2. API-key check for ``/v1`` routes (401, counted),
3. per-gateway token bucket (429 + ``Retry-After``, counted; batch
   submissions cost one token per report),
4. body decode via :mod:`.wire` (400 with the parse error),
5. the service call, serialized under one lock —
   :class:`~repro.securityservice.service.IoTSecurityService` memoizes
   internally and is not thread-safe, and the lock also keeps enrolment
   atomic with identification.

Every request runs inside a ``service.http.request`` span and increments
``service_http_requests_total`` labelled with the route pattern (not the
raw path — bounded cardinality) and status code.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.obs import counter as obs_counter
from repro.obs import get_provider
from repro.obs import names as obs_names
from repro.obs import registry_to_prometheus
from repro.obs import span as obs_span

from ..protocol import IsolationDirective
from ..service import IoTSecurityService
from .auth import ANONYMOUS_GATEWAY, ApiKeyRegistry
from .ratelimit import GatewayRateLimiter
from .wire import WireError, directive_to_dict, report_from_dict

__all__ = ["AppResponse", "ServiceApp", "MAX_BODY_BYTES"]

#: Reject request bodies larger than this with 413 (a full registry's
#: fingerprints arrive in batches far below it; this guards the parser).
MAX_BODY_BYTES = 8 * 1024 * 1024

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class AppResponse:
    """One HTTP response, transport-agnostic."""

    status: int
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def json(self) -> object:
        """The body parsed as JSON (test/bench convenience)."""
        return json.loads(self.body.decode("utf-8"))


def _json_response(status: int, payload: object, headers: dict | None = None) -> AppResponse:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    out = {"Content-Type": _JSON}
    if headers:
        out.update(headers)
    return AppResponse(status, body, out)


def _error(status: int, message: str, headers: dict | None = None) -> AppResponse:
    return _json_response(status, {"error": message}, headers)


class ServiceApp:
    """Routes HTTP requests onto one :class:`IoTSecurityService`.

    Parameters
    ----------
    service:
        The in-process IoTSSP to expose.
    auth:
        API-key table; an empty/default registry runs *open* (every
        request accepted).  See :mod:`.auth`.
    limiter:
        Per-gateway token bucket; None disables rate limiting.  Build it
        with an injected clock (the server passes ``time.monotonic``).
    """

    def __init__(
        self,
        service: IoTSecurityService,
        *,
        auth: ApiKeyRegistry | None = None,
        limiter: GatewayRateLimiter | None = None,
    ) -> None:
        self.service = service
        self.auth = auth if auth is not None else ApiKeyRegistry()
        self.limiter = limiter
        self._lock = threading.Lock()

    # --- entry point --------------------------------------------------------

    def handle(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> AppResponse:
        endpoint, response = self._route(method, path, headers, body)
        obs_counter(
            obs_names.METRIC_HTTP_REQUESTS,
            endpoint=endpoint,
            status=str(response.status),
        ).inc()
        return response

    def _route(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> tuple[str, AppResponse]:
        """Dispatch; returns (route pattern for metrics, response)."""
        lowered = {k.lower(): v for k, v in headers.items()}
        path = path.split("?", 1)[0].rstrip("/") or "/"
        with obs_span(obs_names.SPAN_HTTP_REQUEST, method=method, endpoint=path) as span:
            endpoint, response = self._dispatch(method, path, lowered, body)
            span.set(endpoint=endpoint, status=str(response.status))
            return endpoint, response

    def _dispatch(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> tuple[str, AppResponse]:
        if len(body) > MAX_BODY_BYTES:
            return path, _error(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if path == "/healthz":
            return "/healthz", self._only(method, "GET", self._healthz)
        if path == "/metrics":
            return "/metrics", self._only(method, "GET", self._metrics)
        if path.startswith("/v1"):
            return self._dispatch_v1(method, path, headers, body)
        return path, _error(404, f"no such endpoint: {path}")

    def _dispatch_v1(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> tuple[str, AppResponse]:
        gateway_id = headers.get("x-gateway-id") or ANONYMOUS_GATEWAY
        if not self.auth.verify(headers.get("x-gateway-id"), headers.get("x-api-key")):
            obs_counter(obs_names.METRIC_HTTP_AUTH_FAILURES).inc()
            return path, _error(
                401,
                "missing or invalid API key (send X-Gateway-Id and X-Api-Key)",
                {"WWW-Authenticate": 'ApiKey header="X-Api-Key"'},
            )
        if path == "/v1/report":
            return "/v1/report", self._only(
                method, "POST", lambda: self._submit_one(gateway_id, body)
            )
        if path == "/v1/reports":
            return "/v1/reports", self._only(
                method, "POST", lambda: self._submit_many(gateway_id, body)
            )
        if path == "/v1/types":
            if method == "GET":
                return "/v1/types", self._rate_limited(gateway_id, 1.0, self._list_types)
            if method == "POST":
                return "/v1/types", self._rate_limited(
                    gateway_id, 1.0, lambda: self._enroll(body)
                )
            return "/v1/types", _error(405, f"{method} not allowed", {"Allow": "GET, POST"})
        if path.startswith("/v1/directive/"):
            device_type = path[len("/v1/directive/") :]
            return "/v1/directive/{device_type}", self._only(
                method,
                "GET",
                lambda: self._rate_limited(
                    gateway_id, 1.0, lambda: self._directive(device_type)
                ),
            )
        return path, _error(404, f"no such endpoint: {path}")

    # --- plumbing -----------------------------------------------------------

    def _only(self, method: str, allowed: str, fn) -> AppResponse:
        if method != allowed:
            return _error(405, f"{method} not allowed", {"Allow": allowed})
        return fn()

    def _rate_limited(self, gateway_id: str, cost: float, fn) -> AppResponse:
        if self.limiter is None:
            return fn()
        decision = self.limiter.acquire(gateway_id, cost)
        limit_headers = {
            "X-RateLimit-Limit": str(int(self.limiter.burst)),
            "X-RateLimit-Remaining": str(decision.remaining),
        }
        if not decision.allowed:
            obs_counter(obs_names.METRIC_HTTP_RATE_LIMITED).inc()
            limit_headers["Retry-After"] = f"{decision.retry_after:.3f}"
            return _error(
                429,
                f"rate limit exceeded for gateway {gateway_id!r}",
                limit_headers,
            )
        response = fn()
        response.headers.update(limit_headers)
        return response

    def _decode_json(self, body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"request body is not valid JSON: {exc}") from exc

    # --- routes -------------------------------------------------------------

    def _healthz(self) -> AppResponse:
        with self._lock:
            payload = {
                "status": "ok",
                "known_types": len(self.service.known_types),
                "reports_handled": self.service.reports_handled,
            }
        return _json_response(200, payload)

    def _metrics(self) -> AppResponse:
        registry = getattr(get_provider(), "metrics", None)
        if registry is None:
            text = "# metrics collection disabled (no recording provider installed)\n"
        else:
            text = registry_to_prometheus(registry)
        return AppResponse(200, text.encode("utf-8"), {"Content-Type": _PROMETHEUS})

    def _submit_one(self, gateway_id: str, body: bytes) -> AppResponse:
        try:
            report = report_from_dict(self._decode_json(body))
        except WireError as exc:
            return _error(400, str(exc))

        def run() -> AppResponse:
            with self._lock:
                directive = self.service.handle_report(report)
            return _json_response(200, directive_to_dict(directive))

        # Parse before pricing: malformed bodies are 400s, never 429s.
        return self._rate_limited(gateway_id, 1.0, run)

    def _submit_many(self, gateway_id: str, body: bytes) -> AppResponse:
        try:
            payload = self._decode_json(body)
            if not isinstance(payload, dict) or not isinstance(
                payload.get("reports"), list
            ):
                raise WireError("batch body must be {'reports': [...]}")
            reports = [report_from_dict(item) for item in payload["reports"]]
        except WireError as exc:
            return _error(400, str(exc))

        def run() -> AppResponse:
            with self._lock:
                directives = self.service.handle_reports(reports)
            return _json_response(
                200, {"directives": [directive_to_dict(d) for d in directives]}
            )

        # Parse before pricing so a malformed batch is a 400, not a 429;
        # a well-formed one costs one token per report it carries.
        return self._rate_limited(gateway_id, float(max(1, len(reports))), run)

    def _directive(self, device_type: str) -> AppResponse:
        with self._lock:
            if device_type not in self.service.known_types:
                return _error(404, f"unknown device type: {device_type}")
            assessment = self.service.assess_type(device_type)
        directive = IsolationDirective(
            device_type=device_type,
            level=assessment.level,
            permitted_endpoints=assessment.permitted_endpoints,
            vulnerability_ids=assessment.vulnerability_ids,
        )
        return _json_response(200, directive_to_dict(directive))

    def _list_types(self) -> AppResponse:
        with self._lock:
            types = list(self.service.known_types)
        return _json_response(200, {"types": types})

    def _enroll(self, body: bytes) -> AppResponse:
        try:
            payload = self._decode_json(body)
            if not isinstance(payload, dict):
                raise WireError("enrolment body must be a JSON object")
            label = payload.get("label")
            if not isinstance(label, str) or not label:
                raise WireError("enrolment requires a non-empty string 'label'")
            raw = payload.get("fingerprints")
            if not isinstance(raw, list) or not raw:
                raise WireError("enrolment requires a non-empty 'fingerprints' list")
            fingerprints = [
                report_from_dict({"fingerprint": item}).fingerprint for item in raw
            ]
        except WireError as exc:
            return _error(400, str(exc))
        with self._lock:
            if label in self.service.known_types:
                return _error(409, f"device type already enrolled: {label}")
            self.service.enroll_type(label, fingerprints)
            count = len(self.service.known_types)
        return _json_response(201, {"label": label, "known_types": count})
