"""``ThreadingHTTPServer`` glue for :class:`~.app.ServiceApp`.

The server owns exactly two jobs: move bytes between sockets and the
socketless app (one handler thread per connection), and manage the
process-global observability provider so ``/metrics`` has something live
to render.  On :meth:`~SecurityServiceHTTPServer.start` it installs its
:class:`~repro.obs.RecordingProvider` (bounded span ring — memory stays
flat under sustained load) and on :meth:`~SecurityServiceHTTPServer.stop`
it restores whatever was installed before, so embedding it in tests or
benchmarks never leaks global state.

The ``app`` attribute is duck-typed: anything with
``handle(method, path, headers, body) -> AppResponse`` serves — the
resilience integration tests exploit this with fault-injecting wrappers
around a real :class:`~.app.ServiceApp`.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import RecordingProvider, set_provider

from .app import AppResponse

__all__ = ["SecurityServiceHTTPServer", "DEFAULT_MAX_SPAN_RECORDS"]

#: Span-ring bound for the server-managed recording provider.
DEFAULT_MAX_SPAN_RECORDS = 4096


class _Handler(BaseHTTPRequestHandler):
    server_version = "iot-sentinel-iotssp/1.0"
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        try:
            response = self.server.app.handle(  # type: ignore[attr-defined]
                self.command, self.path, dict(self.headers.items()), body
            )
        except Exception as exc:  # the app contract is "never raise", but
            # a broken wrapper must not kill the connection thread silently.
            response = AppResponse(
                500,
                f'{{"error": "internal server error: {type(exc).__name__}"}}\n'.encode(),
                {"Content-Type": "application/json"},
            )
        self.send_response(response.status)
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    do_GET = _dispatch
    do_POST = _dispatch
    do_PUT = _dispatch
    do_DELETE = _dispatch
    do_PATCH = _dispatch

    def log_message(self, format: str, *args: object) -> None:
        pass  # the obs layer is the access log; stderr chatter off.


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def handle_error(self, request, client_address) -> None:
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return  # client went away mid-response; routine under load.
        super().handle_error(request, client_address)


class SecurityServiceHTTPServer:
    """Serve a :class:`~.app.ServiceApp` on a background thread.

    Parameters
    ----------
    app:
        Anything with ``handle(method, path, headers, body)``.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` / :attr:`base_url`).
    provider:
        Observability provider to install globally while serving.  None
        (default) creates a :class:`RecordingProvider` with a bounded
        span ring.  Pass ``manage_provider=False`` to leave the global
        provider untouched (e.g. the caller already installed one).
    """

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        provider: RecordingProvider | None = None,
        manage_provider: bool = True,
    ) -> None:
        self.app = app
        self._httpd = _Server((host, port), _Handler)
        self._httpd.app = app  # type: ignore[attr-defined]
        self.provider = provider or RecordingProvider(
            max_span_records=DEFAULT_MAX_SPAN_RECORDS
        )
        self._manage_provider = manage_provider
        # Guards the provider bookkeeping: serve_forever runs on whatever
        # thread the caller chose, start/stop on the owner's.
        self._state_lock = threading.Lock()
        self._previous_provider = None
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SecurityServiceHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        if self._manage_provider:
            with self._state_lock:
                self._previous_provider = set_provider(self.provider)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"iotssp-http-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=10.0)
        self._httpd.server_close()
        self._thread = None
        if self._manage_provider:
            with self._state_lock:
                set_provider(self._previous_provider)
                self._previous_provider = None

    def serve_forever(self) -> None:
        """Foreground serving for the CLI path (Ctrl-C to stop)."""
        if self._manage_provider:
            with self._state_lock:
                self._previous_provider = set_provider(self.provider)
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            if self._manage_provider:
                with self._state_lock:
                    set_provider(self._previous_provider)
                    self._previous_provider = None

    def __enter__(self) -> "SecurityServiceHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
