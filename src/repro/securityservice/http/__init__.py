"""The IoTSSP serving tier: a stdlib-only HTTP surface over the service.

The paper's Fig. 1 architecture has a fleet of Security Gateways
reporting device fingerprints to a *remote* IoT Security Service; this
package is that network boundary.  It stands the in-process
:class:`~repro.securityservice.service.IoTSecurityService` up behind a
``ThreadingHTTPServer`` and gives gateways an
:class:`~repro.securityservice.http.client.HttpTransport` that speaks
the same ``Transport`` protocol as the in-process transports — so the
untouched :class:`~repro.securityservice.resilience.ResilientTransport`
retry/breaker stack composes around real sockets unchanged.

Module map (server side bottom-up):

* :mod:`.wire` — JSON codecs for reports and directives (shared by both
  sides; validation failures become 400s).
* :mod:`.auth` — per-gateway API keys (auth-lite, constant-time compare).
* :mod:`.ratelimit` — deterministic per-gateway token bucket with an
  injected clock.
* :mod:`.app` — the socketless router: ``(method, path, headers, body)
  -> response``.  All instrumentation and thread-safety live here, so
  every route is testable without opening a port.
* :mod:`.server` — ``ThreadingHTTPServer`` glue binding the app to an
  ephemeral or fixed port.
* :mod:`.client` — ``HttpTransport`` + ``SystemClock`` for gateways.

See ``docs/serving.md`` for the endpoint reference, quickstart, and
operations runbook.
"""

from .app import AppResponse, ServiceApp
from .auth import ApiKeyRegistry
from .client import HttpTransport, SystemClock
from .ratelimit import GatewayRateLimiter, RateDecision, TokenBucket
from .server import SecurityServiceHTTPServer
from .wire import (
    WireError,
    directive_from_dict,
    directive_to_dict,
    report_from_dict,
    report_to_dict,
)

__all__ = [
    "AppResponse",
    "ServiceApp",
    "ApiKeyRegistry",
    "HttpTransport",
    "SystemClock",
    "GatewayRateLimiter",
    "RateDecision",
    "TokenBucket",
    "SecurityServiceHTTPServer",
    "WireError",
    "directive_from_dict",
    "directive_to_dict",
    "report_from_dict",
    "report_to_dict",
]
