"""The gateway-side HTTP client: ``HttpTransport`` + ``SystemClock``.

``HttpTransport`` implements the same ``submit``/``submit_many``
protocol as the in-process transports, so the resilience stack composes
around it unchanged::

    transport = ResilientTransport(
        HttpTransport(server.base_url, gateway_id="gw-1", api_key=key),
        clock=SystemClock(),
    )
    directive = transport.submit(report)

Failures map onto the resilience taxonomy so the retry/breaker
classification keeps working across the network boundary: connection
refusals and 5xx/429 responses become the *retryable*
:class:`~repro.securityservice.resilience.ServiceUnavailable`, socket
deadlines become :class:`~repro.securityservice.resilience.TransportTimeout`,
and 4xx client errors or unparseable bodies become the *fatal*
:class:`~repro.securityservice.resilience.ProtocolError` — retrying a
request the server already called malformed would never succeed.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from ..protocol import FingerprintReport, IsolationDirective, Transport
from ..resilience import ProtocolError, ServiceUnavailable, TransportTimeout
from .wire import WireError, directive_from_dict, report_to_dict

__all__ = ["HttpTransport", "SystemClock"]


class SystemClock:
    """Wall-clock adapter with the ``ManualClock`` interface.

    The resilience layer asks its clock for ``now``/``sleep`` (and
    ``advance_to`` when callers thread timestamps).  In simulation that
    is a hand-cranked :class:`~repro.securityservice.resilience.ManualClock`;
    against a real server, time passes by itself — ``now`` reads
    :func:`time.monotonic`, ``sleep`` really sleeps, and ``advance_to``
    is a no-op because the wall clock cannot be set.
    """

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def advance(self, seconds: float) -> None:
        self.sleep(seconds)

    def advance_to(self, timestamp: float) -> None:
        pass


class HttpTransport(Transport):
    """Submit reports to a remote IoTSSP over HTTP.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (an optional path prefix is honoured).
    gateway_id / api_key:
        Sent as ``X-Gateway-Id`` / ``X-Api-Key`` on every request.
        Against an open server only the id matters (rate-limit identity).
    timeout:
        Socket timeout in seconds for connect and each read.
    """

    latency = 0.0

    def __init__(
        self,
        base_url: str,
        *,
        gateway_id: str | None = None,
        api_key: str | None = None,
        timeout: float = 5.0,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"base_url must be http://host[:port], got {base_url!r}")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self.gateway_id = gateway_id
        self.api_key = api_key
        self.timeout = timeout

    # --- Transport protocol -------------------------------------------------

    def submit(self, report: FingerprintReport) -> IsolationDirective:
        payload = self.request_json("POST", "/v1/report", self._report_body(report))
        return self._decode_directive(payload)

    def submit_many(self, reports: list[FingerprintReport]) -> list[IsolationDirective]:
        payload = self.request_json(
            "POST",
            "/v1/reports",
            {"reports": [self._report_body(report) for report in reports]},
        )
        if not isinstance(payload, dict) or not isinstance(
            payload.get("directives"), list
        ):
            raise ProtocolError("batch response missing 'directives' list")
        directives = [self._decode_directive(item) for item in payload["directives"]]
        if len(directives) != len(reports):
            raise ProtocolError(
                f"batch response carries {len(directives)} directives "
                f"for {len(reports)} reports"
            )
        return directives

    # --- request plumbing ---------------------------------------------------

    def request_json(self, method: str, path: str, payload: object | None = None):
        """One request; returns the decoded JSON body or raises a fault.

        Public because admin flows (type listing/enrolment, directive
        lookups, health probes) share the same fault mapping as submits.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Accept": "application/json"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if self.gateway_id is not None:
            headers["X-Gateway-Id"] = self.gateway_id
        if self.api_key is not None:
            headers["X-Api-Key"] = self.api_key
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )
        try:
            try:
                connection.request(method, self._prefix + path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except TimeoutError as exc:
                raise TransportTimeout(f"{method} {path}: {exc}") from exc
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                raise ServiceUnavailable(f"{method} {path}: {exc}") from exc
        finally:
            connection.close()
        return self._decode_response(method, path, response.status, raw)

    def _decode_response(self, method: str, path: str, status: int, raw: bytes):
        if status in (200, 201):
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"{method} {path}: unparseable body: {exc}") from exc
        detail = _error_detail(raw)
        if status == 429 or status >= 500:
            # Over-capacity and server-side failures are transient: the
            # retry/breaker stack should back off and try again.
            raise ServiceUnavailable(f"{method} {path}: HTTP {status}: {detail}")
        raise ProtocolError(f"{method} {path}: HTTP {status}: {detail}")

    def _report_body(self, report: FingerprintReport) -> dict:
        if report.gateway_id is None and self.gateway_id is not None:
            report = FingerprintReport(
                fingerprint=report.fingerprint, gateway_id=self.gateway_id
            )
        return report_to_dict(report)

    def _decode_directive(self, payload: object) -> IsolationDirective:
        try:
            return directive_from_dict(payload)
        except WireError as exc:
            raise ProtocolError(f"malformed directive in response: {exc}") from exc


def _error_detail(raw: bytes) -> str:
    try:
        data = json.loads(raw.decode("utf-8"))
        if isinstance(data, dict) and isinstance(data.get("error"), str):
            return data["error"]
    except (UnicodeDecodeError, json.JSONDecodeError):
        pass
    return raw.decode("utf-8", errors="replace").strip() or "<empty body>"
