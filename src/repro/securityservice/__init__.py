"""The IoT Security Service Provider (IoTSSP) side of IoT Sentinel.

Fingerprint classification service, vulnerability repository, isolation
policy, the gateway↔service protocol (Sect. III-B), and the HTTP
serving tier that stands the service up behind real sockets
(``docs/serving.md``).
"""

from .assessment import Assessment, assess_device_type
from .http import (
    ApiKeyRegistry,
    GatewayRateLimiter,
    HttpTransport,
    SecurityServiceHTTPServer,
    ServiceApp,
    SystemClock,
)
from .protocol import (
    AnonymizingTransport,
    DirectTransport,
    FingerprintReport,
    IsolationDirective,
    Transport,
)
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Fault,
    FaultInjectingTransport,
    ManualClock,
    ProtocolError,
    ResilientTransport,
    RetryPolicy,
    ServiceUnavailable,
    TransportFault,
    TransportTimeout,
)
from .service import IoTSecurityService
from .sharding import DEFAULT_VNODES, HashRing, ShardedSecurityService
from .vulndb import VulnerabilityDatabase, VulnerabilityRecord, seed_database

__all__ = [
    "AnonymizingTransport",
    "ApiKeyRegistry",
    "Assessment",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_VNODES",
    "DirectTransport",
    "Fault",
    "FaultInjectingTransport",
    "FingerprintReport",
    "GatewayRateLimiter",
    "HashRing",
    "HttpTransport",
    "IoTSecurityService",
    "IsolationDirective",
    "ManualClock",
    "ProtocolError",
    "ResilientTransport",
    "RetryPolicy",
    "SecurityServiceHTTPServer",
    "ServiceApp",
    "ServiceUnavailable",
    "ShardedSecurityService",
    "SystemClock",
    "Transport",
    "TransportFault",
    "TransportTimeout",
    "VulnerabilityDatabase",
    "VulnerabilityRecord",
    "assess_device_type",
    "seed_database",
]
