"""The IoT Security Service Provider (IoTSSP) side of IoT Sentinel.

Fingerprint classification service, vulnerability repository, isolation
policy and the gateway↔service protocol (Sect. III-B).
"""

from .assessment import Assessment, assess_device_type
from .protocol import (
    AnonymizingTransport,
    DirectTransport,
    FingerprintReport,
    IsolationDirective,
    Transport,
)
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Fault,
    FaultInjectingTransport,
    ManualClock,
    ProtocolError,
    ResilientTransport,
    RetryPolicy,
    ServiceUnavailable,
    TransportFault,
    TransportTimeout,
)
from .service import IoTSecurityService
from .vulndb import VulnerabilityDatabase, VulnerabilityRecord, seed_database

__all__ = [
    "AnonymizingTransport",
    "Assessment",
    "CircuitBreaker",
    "CircuitOpenError",
    "DirectTransport",
    "Fault",
    "FaultInjectingTransport",
    "FingerprintReport",
    "IoTSecurityService",
    "IsolationDirective",
    "ManualClock",
    "ProtocolError",
    "ResilientTransport",
    "RetryPolicy",
    "ServiceUnavailable",
    "Transport",
    "TransportFault",
    "TransportTimeout",
    "VulnerabilityDatabase",
    "VulnerabilityRecord",
    "assess_device_type",
    "seed_database",
]
