"""The IoT Security Service Provider (IoTSSP) side of IoT Sentinel.

Fingerprint classification service, vulnerability repository, isolation
policy and the gateway↔service protocol (Sect. III-B).
"""

from .assessment import Assessment, assess_device_type
from .protocol import (
    AnonymizingTransport,
    DirectTransport,
    FingerprintReport,
    IsolationDirective,
    Transport,
)
from .service import IoTSecurityService
from .vulndb import VulnerabilityDatabase, VulnerabilityRecord, seed_database

__all__ = [
    "AnonymizingTransport",
    "Assessment",
    "DirectTransport",
    "FingerprintReport",
    "IoTSecurityService",
    "IsolationDirective",
    "Transport",
    "VulnerabilityDatabase",
    "VulnerabilityRecord",
    "assess_device_type",
    "seed_database",
]
