"""Gateway ↔ IoT Security Service message types and transports.

The service is deliberately client-stateless: a gateway submits a
:class:`FingerprintReport` and receives an :class:`IsolationDirective`;
nothing about the gateway is retained (Sect. III-B).  Transports are
pluggable — :class:`DirectTransport` for in-process use and
:class:`AnonymizingTransport` modelling the paper's suggested Tor path
(identity stripped, extra latency).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.fingerprint import Fingerprint
from repro.sdn.overlay import IsolationLevel

__all__ = [
    "FingerprintReport",
    "IsolationDirective",
    "Transport",
    "DirectTransport",
    "AnonymizingTransport",
]


@dataclass(frozen=True)
class FingerprintReport:
    """What a Security Gateway submits for one new device."""

    fingerprint: Fingerprint
    gateway_id: str | None = None  # optional; anonymized transports strip it


@dataclass(frozen=True)
class IsolationDirective:
    """What the IoTSSP returns: type, level, allow-list, cache lifetime."""

    device_type: str
    level: IsolationLevel
    permitted_endpoints: frozenset[str] = frozenset()
    ttl_seconds: float = 86400.0
    vulnerability_ids: tuple[str, ...] = ()
    #: True for gateway-minted degraded-mode directives (the service was
    #: unreachable, so the device sits in strict quarantine until the
    #: pending report is accepted — see ``docs/robustness.md``).  Real
    #: service responses always carry False.
    provisional: bool = False


class Transport:
    """Carries a report to a service object and a directive back."""

    #: Simulated one-way latency in seconds (used by netsim experiments).
    latency: float = 0.0

    def __init__(self, service: "object") -> None:
        self._service = service

    def submit(self, report: FingerprintReport) -> IsolationDirective:
        return self._service.handle_report(report)

    def submit_many(self, reports: list[FingerprintReport]) -> list[IsolationDirective]:
        """Carry a whole profiling batch in one round trip.

        Delegates to the service's batched ``handle_reports`` (one
        compiled-bank stage-1 pass) when it offers one, else falls back to
        per-report submits.  Either way the directives are positionally
        aligned with ``reports`` and identical to scalar submits.
        """
        handle_reports = getattr(self._service, "handle_reports", None)
        if handle_reports is not None:
            return handle_reports(list(reports))
        return [self.submit(report) for report in reports]


class DirectTransport(Transport):
    """In-process call, negligible latency."""

    latency = 0.005


class AnonymizingTransport(Transport):
    """Tor-like path: strips the gateway identity, adds onion latency."""

    latency = 0.350

    def submit(self, report: FingerprintReport) -> IsolationDirective:
        return super().submit(replace(report, gateway_id=None))

    def submit_many(self, reports: list[FingerprintReport]) -> list[IsolationDirective]:
        return super().submit_many(
            [replace(report, gateway_id=None) for report in reports]
        )
