"""Fault-tolerant gateway ↔ IoTSSP reporting.

The paper's deployment splits identification across the user-premises
Security Gateway and a *remote* IoT Security Service, possibly reached
over a Tor-like anonymizing path with substantial latency (Sect. III-B,
V).  At that distance the service will sometimes be slow, flaky or down,
so the reporting path needs an availability story:

* :class:`ResilientTransport` — a :class:`~.protocol.Transport` wrapper
  adding a per-attempt timeout budget, deterministic exponential backoff
  with seeded jitter, retry classification (transient transport faults
  are retried, fatal protocol errors are not) and a circuit breaker
  (closed → open → half-open) that fast-fails while the service is known
  to be unhealthy.
* :class:`FaultInjectingTransport` — a test/bench harness with a
  scriptable failure schedule (errors, timeouts, latency spikes,
  N-failures-then-recover) for exercising the gateway's degraded mode.

Everything here runs on an injectable :class:`ManualClock` and
seed-derived RNG: no wall-clock reads, no ambient randomness.  The same
seed therefore yields a byte-identical retry schedule, which the
fault-injection tests and ``benchmarks/bench_ext_outage.py`` rely on.
A real deployment injects a clock adapter over ``time.monotonic`` /
``time.sleep``; the simulated pipeline drives the clock from frame
timestamps.  See ``docs/robustness.md`` for the failure model.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from enum import Enum

from repro.obs import counter as obs_counter
from repro.obs import names as obs_names
from repro.obs import span as obs_span

from .protocol import FingerprintReport, IsolationDirective, Transport

__all__ = [
    "TransportFault",
    "TransportTimeout",
    "ServiceUnavailable",
    "CircuitOpenError",
    "ProtocolError",
    "is_retryable",
    "ManualClock",
    "RetryPolicy",
    "backoff_delay",
    "backoff_schedule",
    "BreakerState",
    "CircuitBreaker",
    "ResilientTransport",
    "FaultKind",
    "Fault",
    "FaultInjectingTransport",
]


# --- fault taxonomy ----------------------------------------------------------


class TransportFault(Exception):
    """Base class for *transient* reporting faults — worth retrying."""


class TransportTimeout(TransportFault):
    """An attempt exceeded its latency budget (client-side deadline)."""


class ServiceUnavailable(TransportFault):
    """The service could not be reached or refused the connection."""


class CircuitOpenError(TransportFault):
    """Fast-fail: the circuit breaker is open, no attempt was made."""


class ProtocolError(Exception):
    """Fatal gateway↔service disagreement (malformed message, version

    mismatch).  Retrying an identical exchange cannot succeed, so these
    are never retried and propagate to the caller immediately.
    """


def is_retryable(exc: BaseException) -> bool:
    """Retry classification: transient transport faults vs. fatal errors.

    :class:`ProtocolError` is always fatal.  Transport faults plus the
    stdlib's connection-shaped exceptions are transient.  Anything else
    (a bug in the service, a ``KeyError`` from a stub) is treated as
    fatal so defects surface instead of being retried into oblivion.
    """
    if isinstance(exc, ProtocolError):
        return False
    return isinstance(exc, (TransportFault, TimeoutError, ConnectionError, OSError))


# --- clock -------------------------------------------------------------------


class ManualClock:
    """Injectable simulation clock: monotonic ``now`` plus explicit advance.

    The resilience layer never reads the wall clock; it asks this object.
    The gateway drives it from frame timestamps (``advance_to``), fault
    schedules add latency spikes (``advance``), and backoff "sleeps" are
    simulated time advancing (``sleep``).  A production deployment swaps
    in an adapter whose ``now``/``sleep`` call ``time.monotonic`` /
    ``time.sleep``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clock cannot run backwards")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Move forward to ``timestamp``; earlier timestamps are ignored."""
        if timestamp > self._now:
            self._now = timestamp

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)


# --- retry policy ------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for one resilient submit: attempts, backoff shape, budget."""

    #: Total tries per ``submit`` call (first attempt + retries).
    max_attempts: int = 4
    #: Backoff before retry *n* (n ≥ 1) is ``base_delay * multiplier**(n-1)``,
    #: capped at ``max_delay``, then jittered.
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    #: Jitter fraction: each delay is scaled by a seed-derived factor
    #: drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.1
    #: Per-attempt latency budget, seconds; an attempt whose round trip
    #: exceeds it counts as a :class:`TransportTimeout` and is retried.
    attempt_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.base_delay < 0 or self.max_delay < 0 or self.attempt_timeout <= 0:
            raise ValueError("delays must be non-negative and the budget positive")


def backoff_delay(policy: RetryPolicy, seed: int, call: int, attempt: int) -> float:
    """Deterministic jittered backoff before retry ``attempt`` (1-based).

    The jitter RNG is derived from ``(seed, call, attempt)`` alone —
    string-seeded :class:`random.Random` hashes with SHA-512, so the
    value is stable across processes, platforms and ``PYTHONHASHSEED``.
    Different ``call`` tokens de-synchronize concurrent devices while
    keeping every schedule reproducible for a fixed seed.
    """
    if attempt < 1:
        raise ValueError("backoff applies from the first retry (attempt >= 1)")
    raw = min(policy.max_delay, policy.base_delay * policy.multiplier ** (attempt - 1))
    if policy.jitter <= 0.0 or raw <= 0.0:
        return raw
    rng = random.Random(f"resilience:{seed}:{call}:{attempt}")
    return raw * (1.0 + policy.jitter * (2.0 * rng.random() - 1.0))


def backoff_schedule(policy: RetryPolicy, seed: int, call: int = 0) -> tuple[float, ...]:
    """The full delay sequence one ``submit`` call would sleep through."""
    return tuple(
        backoff_delay(policy, seed, call, attempt)
        for attempt in range(1, policy.max_attempts)
    )


# --- circuit breaker ---------------------------------------------------------


class BreakerState(Enum):
    """closed: normal · open: fast-fail · half-open: probing recovery."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state availability breaker, driven by an external clock.

    ``failure_threshold`` *consecutive* failures trip CLOSED → OPEN.
    While OPEN, :meth:`allow` refuses calls until ``reset_timeout`` has
    elapsed, then the breaker probes in HALF_OPEN: ``half_open_successes``
    consecutive successes close it, any failure re-opens it.  All state
    changes invoke ``on_transition(old, new, now)`` and increment the
    ``transport_breaker_transitions_total`` counter.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_successes: int = 2,
        on_transition: Callable[[BreakerState, BreakerState, float], None] | None = None,
    ) -> None:
        if failure_threshold < 1 or half_open_successes < 1:
            raise ValueError("thresholds must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_successes = half_open_successes
        self.on_transition = on_transition
        # Re-entrant because allow/record_* hold the lock across their
        # call into _transition.  All breaker state below is mutated
        # under it — gateways may drive one breaker from several sweeps.
        self._lock = threading.RLock()
        self.state = BreakerState.CLOSED
        self.transitions: list[tuple[BreakerState, BreakerState, float]] = []
        self._consecutive_failures = 0
        self._half_open_streak = 0
        self._opened_at = 0.0

    @property
    def open_until(self) -> float:
        """Earliest time an OPEN breaker will admit a half-open probe."""
        return self._opened_at + self.reset_timeout

    def _transition(self, new: BreakerState, now: float) -> None:
        # ``on_transition`` fires with the lock held: callbacks observe a
        # consistent (state, transitions) pair but must not call back into
        # a *different* breaker that might be transitioning towards this
        # one.  The in-tree callbacks only log and count.
        with self._lock:
            old = self.state
            if old is new:
                return
            self.state = new
            self.transitions.append((old, new, now))
            obs_counter(
                obs_names.METRIC_BREAKER_TRANSITIONS,
                from_state=old.value,
                to_state=new.value,
            ).inc()
            if self.on_transition is not None:
                self.on_transition(old, new, now)

    def allow(self, now: float) -> bool:
        """May a call proceed at ``now``?  (OPEN → HALF_OPEN happens here.)"""
        with self._lock:
            if self.state is BreakerState.OPEN:
                if now - self._opened_at >= self.reset_timeout:
                    self._half_open_streak = 0
                    self._transition(BreakerState.HALF_OPEN, now)
                    return True
                return False
            return True

    def record_success(self, now: float) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self.state is BreakerState.HALF_OPEN:
                self._half_open_streak += 1
                if self._half_open_streak >= self.half_open_successes:
                    self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        with self._lock:
            if self.state is BreakerState.HALF_OPEN:
                self._opened_at = now
                self._transition(BreakerState.OPEN, now)
                return
            self._consecutive_failures += 1
            if self.state is BreakerState.CLOSED and (
                self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = now
                self._transition(BreakerState.OPEN, now)


# --- the resilient wrapper ---------------------------------------------------


class ResilientTransport(Transport):
    """A :class:`Transport` that survives a flaky service.

    Wraps any inner transport; each :meth:`submit` makes up to
    ``policy.max_attempts`` tries, sleeping the deterministic jittered
    backoff between them on the injected clock, classifying failures via
    :func:`is_retryable`, enforcing the per-attempt latency budget, and
    consulting the circuit breaker before every attempt.  The sequence of
    backoff delays actually slept is appended to :attr:`backoff_log`, so
    two runs with the same seed produce byte-identical schedules.

    ``submit(report, now=...)`` accepts the caller's notion of current
    time (simulation timestamps in the gateway); plain transports do not,
    which :attr:`timeful` advertises to callers.
    """

    #: Marker for callers that can thread a timestamp into ``submit``.
    timeful = True

    def __init__(
        self,
        inner: Transport,
        *,
        policy: RetryPolicy | None = None,
        seed: int = 0,
        clock: ManualClock | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.seed = seed
        self.clock = clock if clock is not None else ManualClock()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.submits = 0
        self.attempts = 0
        #: Every backoff delay slept, in order — the reproducible schedule.
        self.backoff_log: list[float] = []

    @property
    def latency(self) -> float:  # type: ignore[override]
        return self.inner.latency

    def submit(self, report: FingerprintReport, *, now: float | None = None) -> IsolationDirective:
        if now is not None:
            self.clock.advance_to(now)
        call = self.submits
        self.submits += 1
        with obs_span(obs_names.SPAN_TRANSPORT_SUBMIT, call=call) as span:
            last_fault: Exception | None = None
            for attempt in range(self.policy.max_attempts):
                if not self.breaker.allow(self.clock.now()):
                    obs_counter(obs_names.METRIC_TRANSPORT_FAULTS, kind="circuit_open").inc()
                    span.set(outcome="circuit_open", attempts=attempt)
                    raise CircuitOpenError(
                        f"circuit open until t={self.breaker.open_until:.3f}"
                    ) from last_fault
                if attempt:
                    delay = backoff_delay(self.policy, self.seed, call, attempt)
                    self.backoff_log.append(delay)
                    obs_counter(obs_names.METRIC_TRANSPORT_RETRIES).inc()
                    self.clock.sleep(delay)
                self.attempts += 1
                started = self.clock.now()
                try:
                    with obs_span(obs_names.SPAN_TRANSPORT_ATTEMPT, call=call, attempt=attempt):
                        directive = self.inner.submit(report)
                except Exception as exc:
                    if not is_retryable(exc):
                        obs_counter(obs_names.METRIC_TRANSPORT_FAULTS, kind="fatal").inc()
                        span.set(outcome="fatal", attempts=attempt + 1)
                        raise
                    kind = "timeout" if isinstance(exc, (TransportTimeout, TimeoutError)) else "error"
                    obs_counter(obs_names.METRIC_TRANSPORT_FAULTS, kind=kind).inc()
                    self.breaker.record_failure(self.clock.now())
                    last_fault = exc
                    continue
                elapsed = self.clock.now() - started
                if elapsed > self.policy.attempt_timeout:
                    # The answer arrived after the deadline: a real client
                    # would have hung up; discard it and count a timeout.
                    obs_counter(obs_names.METRIC_TRANSPORT_FAULTS, kind="timeout").inc()
                    self.breaker.record_failure(self.clock.now())
                    last_fault = TransportTimeout(
                        f"attempt {attempt} took {elapsed:.3f}s > budget {self.policy.attempt_timeout:.3f}s"
                    )
                    continue
                self.breaker.record_success(self.clock.now())
                span.set(outcome="ok", attempts=attempt + 1)
                return directive
            span.set(outcome="exhausted", attempts=self.policy.max_attempts)
            raise last_fault if last_fault is not None else ServiceUnavailable("no attempts made")

    def submit_many(
        self, reports: list[FingerprintReport], *, now: float | None = None
    ) -> list[IsolationDirective]:
        """Per-report resilient submits — retries and the breaker apply to
        each report individually, so one device's outage cannot poison the
        rest of a batch with a shared failure."""
        return [self.submit(report, now=now) for report in reports]


# --- fault injection ---------------------------------------------------------


class FaultKind(Enum):
    """What a scripted fault does to one submit."""

    OK = "ok"
    ERROR = "error"
    TIMEOUT = "timeout"
    LATENCY = "latency"
    FATAL = "fatal"


@dataclass(frozen=True)
class Fault:
    """One step of a failure schedule; build via the factory methods."""

    kind: FaultKind
    latency: float = 0.0
    message: str = ""

    @classmethod
    def ok(cls) -> "Fault":
        return cls(FaultKind.OK)

    @classmethod
    def error(cls, message: str = "injected: connection refused") -> "Fault":
        return cls(FaultKind.ERROR, message=message)

    @classmethod
    def timeout(cls, message: str = "injected: deadline exceeded") -> "Fault":
        return cls(FaultKind.TIMEOUT, message=message)

    @classmethod
    def latency_spike(cls, seconds: float) -> "Fault":
        return cls(FaultKind.LATENCY, latency=seconds)

    @classmethod
    def fatal(cls, message: str = "injected: malformed response") -> "Fault":
        return cls(FaultKind.FATAL, message=message)


class FaultInjectingTransport(Transport):
    """Transport wrapper that replays a scripted failure schedule.

    One :class:`Fault` is consumed per ``submit``; when the schedule is
    exhausted the transport passes through cleanly (the service has
    "recovered").  Latency spikes advance the shared :class:`ManualClock`
    so a wrapping :class:`ResilientTransport` sees the spike against its
    attempt budget.  Purely a test/bench harness — never constructed on
    the production path.
    """

    def __init__(
        self,
        inner: Transport,
        schedule: Iterable[Fault] = (),
        *,
        clock: ManualClock | None = None,
    ) -> None:
        self.inner = inner
        self.schedule = deque(schedule)
        self.clock = clock
        self.submits = 0
        self.faults_injected = 0

    @classmethod
    def failing(
        cls, inner: Transport, failures: int, *, clock: ManualClock | None = None
    ) -> "FaultInjectingTransport":
        """N-failures-then-recover: the canonical outage script."""
        return cls(inner, [Fault.error()] * failures, clock=clock)

    @property
    def latency(self) -> float:  # type: ignore[override]
        return self.inner.latency

    def submit_many(self, reports: list[FingerprintReport]) -> list[IsolationDirective]:
        """One scripted fault per report, same as per-report submits."""
        return [self.submit(report) for report in reports]

    def submit(self, report: FingerprintReport) -> IsolationDirective:
        self.submits += 1
        fault = self.schedule.popleft() if self.schedule else Fault.ok()
        if fault.kind is FaultKind.OK:
            return self.inner.submit(report)
        self.faults_injected += 1
        if fault.kind is FaultKind.LATENCY:
            if self.clock is not None:
                self.clock.advance(fault.latency)
            return self.inner.submit(report)
        if fault.kind is FaultKind.TIMEOUT:
            raise TransportTimeout(fault.message)
        if fault.kind is FaultKind.ERROR:
            raise ServiceUnavailable(fault.message)
        raise ProtocolError(fault.message)
