"""Consistent-hash sharding for the IoTSSP (the fleet-scale service tier).

One :class:`~repro.securityservice.service.IoTSecurityService` instance
serves one box; millions of devices need N of them.  This module adds the
routing tier:

* :class:`HashRing` — a deterministic consistent-hash ring.  Virtual-node
  positions are derived from SHA-256 over ``(seed, shard id, vnode index)``
  so the layout is identical across processes and runs (Python's ``hash``
  is salted per process and never used).  Adding or removing a shard moves
  only the keys on the arcs its virtual nodes own — bounded remapping,
  pinned by ``tests/securityservice/test_ring_properties.py``.
* :class:`ShardedSecurityService` — N full service replicas behind one
  front.  Shards share one :class:`~repro.core.persistence.ModelStore`
  (train once, warm-start N byte-identical banks) and one vulnerability
  database, so any replica can answer any directive lookup; the ring
  spreads *classification load* by device MAC, it does not partition the
  model.  Batches fan out per shard and reassemble in submission order,
  which makes the N=1 front byte-identical to a bare service (pinned by
  the differential test).

Shard **outage** (``kill_shard``) keeps ring membership — keys do not
remap during a blip; routes to a dead shard raise
:class:`~repro.securityservice.resilience.ServiceUnavailable` and the
gateway's resilience stack (pending queue + provisional quarantine)
carries the affected devices until ``revive_shard``.  Shard
**decommission** (``remove_shard``) takes it out of the ring and remaps
only its keys.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from collections.abc import Iterable, Mapping

import numpy as np

from repro.core.fingerprint import Fingerprint
from repro.core.persistence import ModelStore, warm_start_identifier
from repro.core.registry import DeviceTypeRegistry
from repro.ml.parallel import derive_entropy
from repro.obs import counter as obs_counter
from repro.obs import names as obs_names
from repro.obs import span as obs_span

from .incidents import IncidentReport
from .protocol import FingerprintReport, IsolationDirective
from .resilience import ServiceUnavailable
from .service import IoTSecurityService
from .vulndb import VulnerabilityDatabase, seed_database

__all__ = ["DEFAULT_VNODES", "HashRing", "ShardedSecurityService"]

#: Virtual nodes per shard.  64 keeps worst-case load imbalance under
#: ~1.35x the mean (property-tested) at negligible routing cost.
DEFAULT_VNODES = 64


def _hash64(text: str) -> int:
    """Stable 64-bit position from a string (top 8 bytes of SHA-256)."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over named shards.

    Each shard owns ``vnodes`` points on a 2**64 circle; a key routes to
    the shard owning the first point at or clockwise-after the key's own
    hash.  Positions depend only on ``(seed, shard_id, vnode index)``, so
    two rings built with the same inputs — in any insertion order, in any
    process — route every key identically.
    """

    def __init__(
        self,
        shard_ids: Iterable[str] = (),
        *,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.seed = seed
        self._members: set[str] = set()
        #: Sorted ``(position, shard_id)`` points; ties (astronomically
        #: unlikely) break on the shard id, keeping order deterministic.
        self._points: list[tuple[int, str]] = []
        for shard_id in shard_ids:
            self.add(shard_id)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._members

    def shard_ids(self) -> list[str]:
        return sorted(self._members)

    def _positions_for(self, shard_id: str) -> list[int]:
        return [
            _hash64(f"ring:{self.seed}:{shard_id}:{vnode}")
            for vnode in range(self.vnodes)
        ]

    def add(self, shard_id: str) -> None:
        if shard_id in self._members:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._members.add(shard_id)
        for position in self._positions_for(shard_id):
            insort(self._points, (position, shard_id))

    def remove(self, shard_id: str) -> None:
        if shard_id not in self._members:
            raise ValueError(f"shard {shard_id!r} not on the ring")
        self._members.remove(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]

    def load_fractions(self) -> dict[str, float]:
        """Exact fraction of the key space each shard owns.

        Sums every shard's arc lengths on the 2**64 circle — the expected
        share of a uniform key population, free of sampling noise.  At 64
        vnodes the worst shard stays under ~1.35x the fair share
        (property-tested); useful for capacity planning before pointing
        real load at a layout.
        """
        if not self._points:
            return {}
        modulus = 2**64
        owned: dict[str, int] = {shard_id: 0 for shard_id in self._members}
        for index, (position, shard_id) in enumerate(self._points):
            previous = self._points[index - 1][0] if index else self._points[-1][0] - modulus
            owned[shard_id] += position - previous
        return {shard_id: arc / modulus for shard_id, arc in owned.items()}

    def route(self, key: str) -> str:
        """Shard id owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise ValueError("cannot route on an empty ring")
        position = _hash64(f"key:{self.seed}:{key}")
        # (position, "") sorts before any real point at the same position,
        # so a key hashing exactly onto a vnode routes to that vnode.
        index = bisect_right(self._points, (position, ""))
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._points[index][1]


class ShardedSecurityService:
    """N ``IoTSecurityService`` replicas behind a consistent-hash front.

    The front mirrors the single-service surface (``handle_report``,
    ``handle_reports``, ``train``, ``enroll_type`` …) so gateways and
    transports are oblivious to sharding; ``DirectTransport(front)``
    works unchanged.  Model state fans out to every shard (replication),
    report traffic fans *in* to one shard per device MAC (routing).

    ``random_state`` is normalized to one entropy value up front, so all
    shards train byte-identical banks even when a ``Generator`` is passed.
    """

    def __init__(
        self,
        num_shards: int = 4,
        *,
        store: ModelStore | None = None,
        vnodes: int = DEFAULT_VNODES,
        ring_seed: int = 0,
        vulndb: VulnerabilityDatabase | None = None,
        endpoint_directory: Mapping[str, frozenset[str]] | None = None,
        random_state: int | np.random.Generator | None = None,
        n_jobs: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.store = store
        self.vulndb = vulndb if vulndb is not None else seed_database()
        self._endpoint_directory = dict(endpoint_directory or {})
        self._entropy = derive_entropy(random_state)
        self.n_jobs = n_jobs
        self.ring = HashRing(vnodes=vnodes, seed=ring_seed)
        self.shards: dict[str, IoTSecurityService] = {}
        self._registry: DeviceTypeRegistry | None = None
        self._next_index = 0
        self._down: set[str] = set()
        #: Warm-start cache hits observed while training shards.
        self.cache_hits = 0
        for _ in range(num_shards):
            self.add_shard()

    # --- membership --------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_ids(self) -> list[str]:
        return self.ring.shard_ids()

    def add_shard(self) -> str:
        """Join a new shard; only keys on its new arcs remap to it."""
        shard_id = f"shard-{self._next_index}"
        self._next_index += 1
        shard = IoTSecurityService(
            vulndb=self.vulndb,
            endpoint_directory=self._endpoint_directory,
            random_state=self._entropy,
            n_jobs=self.n_jobs,
        )
        if self._registry is not None:
            self._train_shard(shard, self._registry)
        self.shards[shard_id] = shard
        self.ring.add(shard_id)
        return shard_id

    def remove_shard(self, shard_id: str) -> None:
        """Decommission a shard; only its keys remap, to surviving shards."""
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id!r}")
        if len(self.shards) == 1:
            raise ValueError("cannot remove the last shard")
        self.ring.remove(shard_id)
        del self.shards[shard_id]
        self._down.discard(shard_id)

    def kill_shard(self, shard_id: str) -> None:
        """Mark a shard down (outage, not decommission — no key remap)."""
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id!r}")
        self._down.add(shard_id)

    def revive_shard(self, shard_id: str) -> None:
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id!r}")
        self._down.discard(shard_id)

    @property
    def down_shards(self) -> frozenset[str]:
        return frozenset(self._down)

    # --- training / enrollment (fan-out: every replica carries the bank) ---

    def _train_shard(self, shard: IoTSecurityService, registry: DeviceTypeRegistry) -> None:
        if self.store is None:
            shard.train(registry)
            return
        identifier, hit = warm_start_identifier(
            registry, self.store, random_state=self._entropy, n_jobs=self.n_jobs
        )
        self.cache_hits += int(hit)
        shard.adopt_model(registry, identifier)

    def train(self, registry: DeviceTypeRegistry) -> None:
        """Train every replica; with a shared store the first shard fits
        and the other N-1 load the byte-identical cached bank."""
        self._registry = registry
        for shard in self.shards.values():
            self._train_shard(shard, registry)

    def enroll_type(self, label: str, fingerprints: Iterable[Fingerprint]) -> None:
        """Enroll one new type on every replica.

        After :meth:`train` all shards share one registry object, so the
        corpus mutation happens exactly once here and only the incremental
        classifier training fans out.
        """
        batch = list(fingerprints)
        if self._registry is None:
            # Untrained: each shard still owns a private empty registry.
            for shard in self.shards.values():
                shard.enroll_type(label, batch)
            return
        self._registry.add_many(label, batch)
        for shard in self.shards.values():
            shard.identifier.add_type(self._registry, label)

    def retire_type(self, label: str) -> None:
        if self._registry is None:
            for shard in self.shards.values():
                shard.retire_type(label)
            return
        self._registry.remove_type(label)
        for shard in self.shards.values():
            shard.identifier.remove_type(label)

    def register_endpoints(self, device_type: str, endpoints: Iterable[str]) -> None:
        batch = list(endpoints)
        # Keep the front's own copy current too: it seeds shards joining later.
        current = set(self._endpoint_directory.get(device_type, frozenset()))
        current.update(batch)
        self._endpoint_directory[device_type] = frozenset(current)
        for shard in self.shards.values():
            shard.register_endpoints(device_type, batch)

    @property
    def known_types(self) -> list[str]:
        shard = next(iter(self.shards.values()))
        return shard.known_types

    @property
    def reports_handled(self) -> int:
        return sum(shard.reports_handled for shard in self.shards.values())

    # --- routing -----------------------------------------------------------

    @staticmethod
    def _routing_key(report: FingerprintReport) -> str:
        return report.fingerprint.device_mac

    def _live_shard(self, shard_id: str) -> IoTSecurityService:
        if shard_id in self._down:
            raise ServiceUnavailable(f"shard {shard_id} is down")
        return self.shards[shard_id]

    def handle_report(self, report: FingerprintReport) -> IsolationDirective:
        """Route one report to its owning shard and serve it there."""
        with obs_span(obs_names.SPAN_SHARD_ROUTE) as span:
            shard_id = self.ring.route(self._routing_key(report))
            span.set(shard=shard_id)
            shard = self._live_shard(shard_id)
            obs_counter(obs_names.METRIC_SHARD_REPORTS, shard=shard_id).inc()
            return shard.handle_report(report)

    def handle_reports(self, reports: list[FingerprintReport]) -> list[IsolationDirective]:
        """Fan a batch out per shard, reassemble in submission order.

        A route to a down shard fails the whole batch with
        ``ServiceUnavailable`` *before* any shard runs — the gateway's
        batch path then falls back to per-report submits, isolating the
        outage to the dead shard's devices.
        """
        with obs_span(obs_names.SPAN_SHARD_ROUTE, batch=len(reports)) as span:
            buckets: dict[str, list[int]] = {}
            for index, report in enumerate(reports):
                buckets.setdefault(self.ring.route(self._routing_key(report)), []).append(index)
            for shard_id in buckets:
                if shard_id in self._down:
                    raise ServiceUnavailable(f"shard {shard_id} is down")
            directives: list[IsolationDirective | None] = [None] * len(reports)
            for shard_id, indexes in buckets.items():
                obs_counter(obs_names.METRIC_SHARD_REPORTS, shard=shard_id).inc(len(indexes))
                shard_out = self.shards[shard_id].handle_reports(
                    [reports[i] for i in indexes]
                )
                for i, directive in zip(indexes, shard_out):
                    directives[i] = directive
            span.set(shards=len(buckets))
            return directives  # type: ignore[return-value]

    def directive_for_type(self, device_type: str) -> IsolationDirective:
        """Cross-shard directive lookup by type.

        Routes to the type's home shard for cache affinity, but any live
        replica can answer (shared vulndb + fanned-out endpoint
        directory), so a down home shard falls back to a surviving one.
        """
        shard_id = self.ring.route(device_type)
        if shard_id in self._down:
            for candidate in self.ring.shard_ids():
                if candidate not in self._down:
                    shard_id = candidate
                    break
            else:
                raise ServiceUnavailable("all shards are down")
        return self.shards[shard_id].directive_for_type(device_type)

    def report_incident(self, report: IncidentReport):
        """Route incident reports by device type so one shard's aggregator
        sees the whole cluster; a confirmed record lands in the shared
        vulndb and is instantly visible to every replica's assessments."""
        shard_id = self.ring.route(report.device_type)
        return self._live_shard(shard_id).report_incident(report)

    def assess_type(self, device_type: str):
        shard = next(iter(self.shards.values()))
        return shard.assess_type(device_type)
