"""Structured audit trail of Security Gateway decisions.

Operators (and the paper's user-notification flow) need to answer "what
did the gateway do and why": when was a device profiled, what directive
came back, which flows were denied, was spoofing observed.  The audit log
is an append-only in-memory ring with typed entries and query helpers;
persistence is the operator's choice (entries are plain dicts via
``to_dict``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["AuditEventType", "AuditEvent", "AuditLog"]


class AuditEventType(Enum):
    DEVICE_ATTACHED = "device-attached"
    DEVICE_DETACHED = "device-detached"
    PROFILING_STARTED = "profiling-started"
    DIRECTIVE_RECEIVED = "directive-received"
    DIRECTIVE_PROVISIONAL = "directive-provisional"
    DIRECTIVE_REFRESHED = "directive-refreshed"
    REPORT_RECOVERED = "report-recovered"
    FLOW_DENIED = "flow-denied"
    SPOOF_DETECTED = "spoof-detected"
    USER_NOTIFIED = "user-notified"


@dataclass(frozen=True)
class AuditEvent:
    """One timestamped gateway decision."""

    timestamp: float
    event_type: AuditEventType
    device_mac: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "type": self.event_type.value,
            "device": self.device_mac,
            "detail": self.detail,
        }


@dataclass
class AuditLog:
    """Bounded append-only event store with simple queries."""

    capacity: int = 10000
    _events: deque = field(default_factory=deque)

    def record(
        self, timestamp: float, event_type: AuditEventType, device_mac: str, detail: str = ""
    ) -> AuditEvent:
        event = AuditEvent(
            timestamp=timestamp, event_type=event_type, device_mac=device_mac, detail=detail
        )
        self._events.append(event)
        while len(self._events) > self.capacity:
            self._events.popleft()
        return event

    def __len__(self) -> int:
        return len(self._events)

    def all(self) -> list[AuditEvent]:
        return list(self._events)

    def for_device(self, mac: str) -> list[AuditEvent]:
        return [e for e in self._events if e.device_mac == mac]

    def of_type(self, event_type: AuditEventType) -> list[AuditEvent]:
        return [e for e in self._events if e.event_type is event_type]

    def since(self, timestamp: float) -> list[AuditEvent]:
        return [e for e in self._events if e.timestamp >= timestamp]

    def summary(self) -> dict:
        """Event counts by type (for dashboards)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.event_type.value] = counts.get(event.event_type.value, 0) + 1
        return counts
