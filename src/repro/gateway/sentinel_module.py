"""The IoT Sentinel controller module (the paper's custom Floodlight module).

Responsibilities per Sect. V: network monitoring, fingerprint generation,
communication with the IoT Security Service, and generation + enforcement
of per-device isolation rules.  It sits first in the controller module
chain; packets it does not claim fall through to plain L2 forwarding.

Enforcement strategy: while a device is being profiled its traffic is
forwarded normally but *no flow rules are installed*, so every packet
keeps reaching the controller (that is the monitoring tap).  Once the
IoTSSP returns an isolation level, each new flow triggers a policy check
against the overlay manager and a specific allow- or drop-rule is pushed
down, so subsequent packets of the flow are handled entirely in the data
plane — "for any given flow, there is only one matching enforcement rule".
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.obs import names as obs_names
from repro.obs import span as obs_span
from repro.sdn.controller import Controller, ControllerModule, Decision
from repro.sdn.openflow import Action, FlowMatch, FlowRule, PacketIn
from repro.sdn.overlay import IsolationLevel, OverlayManager, PolicyDecision
from repro.sdn.rules import EnforcementRule, EnforcementRuleCache
from repro.securityservice.protocol import FingerprintReport, IsolationDirective, Transport

from .audit import AuditEventType, AuditLog
from .monitor import DeviceMonitor, MonitorEvent

__all__ = ["UserNotification", "PendingReport", "SentinelModule"]

#: Priority band for enforcement rules (above the learning switch's 10).
_ENFORCE_PRIORITY = 100
#: Idle timeout for installed per-flow rules, seconds.
_FLOW_IDLE_TIMEOUT = 60.0
#: TTL of gateway-minted provisional quarantine directives: short, so a
#: recovered service is consulted promptly even without a retry sweep.
_PROVISIONAL_TTL = 300.0
#: Placeholder type for devices quarantined before identification.
_PROVISIONAL_TYPE = "unidentified"


@dataclass(frozen=True)
class UserNotification:
    """Surfaced to the user for devices needing manual attention (III-C3)."""

    device_mac: str
    device_type: str
    message: str


@dataclass
class PendingReport:
    """A fingerprint the IoTSSP has not accepted yet (degraded mode).

    Created when a submit fails after profiling completes; the device
    sits under a provisional STRICT directive and :meth:`SentinelModule
    .retry_pending` re-submits the stored fingerprint until the service
    recovers.  The report is never dropped.
    """

    device_mac: str
    fingerprint: object
    queued_at: float
    attempts: int = 1
    last_error: str = ""


class SentinelModule(ControllerModule):
    """Monitoring + identification + enforcement, as one controller module."""

    name = "iot-sentinel"

    def __init__(
        self,
        *,
        monitor: DeviceMonitor,
        transport: Transport,
        overlays: OverlayManager,
        rule_cache: EnforcementRuleCache,
        wan_port: int,
        gateway_macs: set[str] | None = None,
        notify: Callable[[UserNotification], None] | None = None,
        audit: AuditLog | None = None,
        provisional_ttl: float = _PROVISIONAL_TTL,
    ) -> None:
        self.monitor = monitor
        self.transport = transport
        self.provisional_ttl = provisional_ttl
        self.overlays = overlays
        self.rule_cache = rule_cache
        self.wan_port = wan_port
        self.gateway_macs = set(gateway_macs or ())
        self.notify = notify
        self.audit = audit if audit is not None else AuditLog()
        self.directives: dict[str, IsolationDirective] = {}
        self.notifications: list[UserNotification] = []
        self.policy_denials = 0
        self._fingerprints: dict[str, object] = {}  # mac -> Fingerprint
        self._directive_times: dict[str, float] = {}
        #: MAC -> leased IPv4 address, learned by DHCP snooping.  Used for
        #: source-address validation: a compromised device cannot spoof
        #: another host's address past the gateway.
        self.ip_bindings: dict[str, str] = {}
        self.spoof_drops = 0
        #: Devices the user was told to remove (Sect. III-C3).  The gateway
        #: watches for further traffic to verify removal actually happened.
        self.removal_pending: dict[str, float] = {}  # mac -> last seen
        #: Fingerprints awaiting IoTSSP acceptance (degraded mode).
        self.pending_reports: dict[str, PendingReport] = {}
        self.degraded_directives = 0
        self.reports_recovered = 0

    # --- profiling lifecycle ------------------------------------------------

    def _submit(self, fingerprint: object, now: float) -> IsolationDirective:
        """Send one report; threads ``now`` into time-aware transports."""
        report = FingerprintReport(fingerprint=fingerprint)
        if getattr(self.transport, "timeful", False):
            return self.transport.submit(report, now=now)
        return self.transport.submit(report)

    def _apply_directive(self, mac: str, directive: IsolationDirective, now: float) -> None:
        """Install a directive's enforcement state (rule cache + overlay)."""
        self.directives[mac] = directive
        self._directive_times[mac] = now
        rule = EnforcementRule(
            device_mac=mac,
            level=directive.level,
            permitted_ips=(
                directive.permitted_endpoints
                if directive.level is IsolationLevel.RESTRICTED
                else frozenset()
            ),
        )
        self.rule_cache.insert(rule)
        self.overlays.assign(mac, directive.level, rule.permitted_ips)

    def _accept_directive(self, mac: str, directive: IsolationDirective, now: float) -> None:
        """A real service response: enforce it, audit it, notify if STRICT."""
        self._apply_directive(mac, directive, now)
        self.audit.record(
            now,
            AuditEventType.DIRECTIVE_RECEIVED,
            mac,
            f"type={directive.device_type} level={directive.level.value}",
        )
        if directive.level is IsolationLevel.STRICT and self.notify is not None:
            notification = UserNotification(
                device_mac=mac,
                device_type=directive.device_type,
                message=(
                    "Device could not be identified as a known safe type; "
                    "it has been placed in strict isolation. If it has "
                    "side channels (Bluetooth/LTE), remove it from the network."
                ),
            )
            self.notifications.append(notification)
            self.audit.record(now, AuditEventType.USER_NOTIFIED, mac, notification.message)
            self.notify(notification)

    def _enter_degraded(self, mac: str, now: float, exc: Exception) -> IsolationDirective:
        """Submit failed: quarantine provisionally and queue the report.

        The paper's default-deny posture for unidentified devices: until
        the IoTSSP answers, the device gets a STRICT directive marked
        ``provisional=True`` with a short TTL, and its fingerprint joins
        the pending-report queue for :meth:`retry_pending`.
        """
        directive = IsolationDirective(
            device_type=_PROVISIONAL_TYPE,
            level=IsolationLevel.STRICT,
            ttl_seconds=self.provisional_ttl,
            provisional=True,
        )
        if mac not in self.pending_reports:
            self.pending_reports[mac] = PendingReport(
                device_mac=mac,
                fingerprint=self._fingerprints[mac],
                queued_at=now,
                last_error=f"{type(exc).__name__}: {exc}",
            )
        self.degraded_directives += 1
        obs_counter(obs_names.METRIC_DEGRADED_DIRECTIVES).inc()
        obs_gauge(obs_names.METRIC_PENDING_REPORTS).set(float(len(self.pending_reports)))
        self._apply_directive(mac, directive, now)
        self.audit.record(
            now,
            AuditEventType.DIRECTIVE_PROVISIONAL,
            mac,
            f"IoTSSP unreachable ({type(exc).__name__}); strict quarantine pending retry",
        )
        return directive

    def complete_profiling(self, event: MonitorEvent, now: float = 0.0) -> IsolationDirective:
        """A profiling session finished: report it and enforce the answer.

        Never loses work: if the submit fails the fingerprint is queued
        and the returned directive is a provisional STRICT quarantine;
        :meth:`retry_pending` upgrades it once the service recovers.
        """
        mac = event.device_mac
        self._fingerprints[mac] = event.fingerprint
        try:
            directive = self._submit(event.fingerprint, now)
        except Exception as exc:  # degraded mode — classified upstream
            return self._enter_degraded(mac, now, exc)
        self._accept_directive(mac, directive, now)
        return directive

    def process_batch(
        self, events: list[MonitorEvent], now: float = 0.0
    ) -> dict[str, IsolationDirective]:
        """Report a drained batch of completed profilings in one round trip.

        Plain transports carry the whole batch via ``submit_many`` (one
        ``service.handle_reports`` call, one compiled-bank stage-1 pass);
        time-aware transports (the resilient path) and any batch-level
        failure fall back to per-event :meth:`complete_profiling`, which
        preserves per-device degraded-mode isolation — one unreachable
        submit quarantines only its own device.  Returns the directive
        enforced per MAC; callers must flush those MACs' flow rules so the
        new policy replaces the pre-drain default-deny entries.
        """
        if not events:
            return {}
        with obs_span(obs_names.SPAN_GATEWAY_BATCH, batch=len(events)):
            obs_counter(obs_names.METRIC_GATEWAY_BATCHES).inc()
            for event in events:
                self._fingerprints[event.device_mac] = event.fingerprint
            directives: dict[str, IsolationDirective] = {}
            submit_many = getattr(self.transport, "submit_many", None)
            if submit_many is not None and not getattr(self.transport, "timeful", False):
                reports = [
                    FingerprintReport(fingerprint=event.fingerprint) for event in events
                ]
                try:
                    answers = submit_many(reports)
                except Exception:
                    answers = None  # degrade to the per-event path below
                if answers is not None:
                    for event, directive in zip(events, answers):
                        self._accept_directive(event.device_mac, directive, now)
                        directives[event.device_mac] = directive
                    return directives
            for event in events:
                directives[event.device_mac] = self.complete_profiling(event, now=now)
            return directives

    @property
    def pending_report_count(self) -> int:
        """Reports still queued for re-submission (degraded-mode devices).

        The public form of the ``gateway_pending_reports`` gauge, so
        operators and tests need not poke ``pending_reports`` internals
        to see whether a retry sweep has drained the queue.
        """
        return len(self.pending_reports)

    def retry_pending(self, now: float) -> list[str]:
        """Re-submit queued fingerprints; returns the MACs finalized.

        Per-device isolation: one failure (or an open circuit breaker)
        skips that device and the sweep continues.  Callers must flush
        the returned MACs' flow rules so the upgraded policy applies.
        """
        recovered: list[str] = []
        for mac in sorted(self.pending_reports):
            pending = self.pending_reports[mac]
            try:
                directive = self._submit(pending.fingerprint, now)
            except Exception as exc:
                pending.attempts += 1
                pending.last_error = f"{type(exc).__name__}: {exc}"
                continue
            del self.pending_reports[mac]
            self.reports_recovered += 1
            obs_counter(obs_names.METRIC_REPORT_RECOVERIES).inc()
            self.audit.record(
                now,
                AuditEventType.REPORT_RECOVERED,
                mac,
                f"accepted after {pending.attempts} failed submit(s); "
                f"type={directive.device_type} level={directive.level.value}",
            )
            self._accept_directive(mac, directive, now)
            recovered.append(mac)
        obs_gauge(obs_names.METRIC_PENDING_REPORTS).set(float(len(self.pending_reports)))
        return recovered

    def forget(self, mac: str) -> None:
        """Drop all per-device state (the device was detached)."""
        self.directives.pop(mac, None)
        self._fingerprints.pop(mac, None)
        self._directive_times.pop(mac, None)
        self.ip_bindings.pop(mac, None)
        self.removal_pending.pop(mac, None)
        if self.pending_reports.pop(mac, None) is not None:
            obs_gauge(obs_names.METRIC_PENDING_REPORTS).set(float(len(self.pending_reports)))

    def request_removal(self, mac: str, now: float = 0.0) -> None:
        """Mark a device as pending physical removal by the user.

        From then on any traffic from the device proves it is still
        present; :meth:`removal_verified` answers whether it has gone
        quiet for the requested interval.
        """
        self.removal_pending[mac] = now

    def removal_verified(self, mac: str, now: float, *, quiet_for: float = 300.0) -> bool:
        """Has the device stayed silent long enough to count as removed?"""
        last_seen = self.removal_pending.get(mac)
        if last_seen is None:
            raise KeyError(f"{mac} has no pending removal")
        return now - last_seen >= quiet_for

    def refresh_directives(self, now: float, *, force: bool = False) -> list[str]:
        """Re-query the IoTSSP for devices whose directive TTL expired.

        Implements Sect. V's "this information can be updated by regular
        update queries to the IoT Security Service".  Returns the MACs
        whose isolation level or allow-list actually changed; their flow
        rules must be flushed by the caller so new policy takes effect.
        """
        changed: list[str] = []
        for mac, directive in list(self.directives.items()):
            if mac in self.pending_reports:
                continue  # degraded-mode device: retry_pending owns its submits
            issued = self._directive_times.get(mac, 0.0)
            if not force and now - issued < directive.ttl_seconds:
                continue
            fingerprint = self._fingerprints.get(mac)
            if fingerprint is None:
                continue
            try:
                fresh = self._submit(fingerprint, now)
            except Exception:
                # One bad submit must not abort the sweep: keep the current
                # directive (and its issue time, so the next sweep retries)
                # and move on to the other devices.
                obs_counter(obs_names.METRIC_REFRESH_SKIPPED).inc()
                continue
            self._directive_times[mac] = now
            if (
                fresh.level is directive.level
                and fresh.permitted_endpoints == directive.permitted_endpoints
            ):
                self.directives[mac] = fresh
                continue
            self.directives[mac] = fresh
            allowed = (
                fresh.permitted_endpoints
                if fresh.level is IsolationLevel.RESTRICTED
                else frozenset()
            )
            self.rule_cache.insert(
                EnforcementRule(device_mac=mac, level=fresh.level, permitted_ips=allowed)
            )
            self.overlays.assign(mac, fresh.level, allowed)
            self.audit.record(
                now,
                AuditEventType.DIRECTIVE_REFRESHED,
                mac,
                f"{directive.level.value} -> {fresh.level.value}",
            )
            changed.append(mac)
        return changed

    # --- policy -> flow rules -----------------------------------------------

    def _snoop_dhcp(self, event: PacketIn) -> None:
        """Learn MAC→IP bindings from DHCP requests (requested-IP option)."""
        packet = event.packet
        if not packet.is_dhcp:
            return
        from repro.packets.dhcp import OPTION_REQUESTED_IP, DHCPMessage

        message = packet.layer(DHCPMessage)
        if message is None:
            return
        requested = message.option(OPTION_REQUESTED_IP)
        if requested and len(requested) == 4:
            self.ip_bindings[message.client_mac] = ".".join(str(b) for b in requested)

    def _is_spoofed(self, packet) -> bool:
        """True when a bound device sends from an address it does not own."""
        binding = self.ip_bindings.get(packet.src_mac)
        if binding is None or packet.src_ip is None:
            return False
        if packet.src_ip in ("0.0.0.0", binding):
            return False
        # Link-local v6 addresses are outside the v4 lease.
        if ":" in packet.src_ip:
            return False
        return True

    def _policy_for(self, event: PacketIn) -> PolicyDecision:
        packet = event.packet
        src = packet.src_mac
        if self._is_spoofed(packet):
            self.spoof_drops += 1
            self.audit.record(
                event.timestamp,
                AuditEventType.SPOOF_DETECTED,
                src,
                f"claimed {packet.src_ip}, bound to {self.ip_bindings.get(src)}",
            )
            return PolicyDecision(False, f"source-address spoofing ({packet.src_ip})")
        rule = self.rule_cache.lookup(src)
        if rule is None:
            return PolicyDecision(False, "no enforcement rule: default-deny")
        # Flow-granular refinements take precedence over the device-level
        # decision (Sect. V: filtering "up to the level of individual flows").
        verdict = rule.flow_verdict(
            is_tcp=packet.is_tcp,
            is_udp=packet.is_udp,
            dst_port=packet.dst_port,
            dst_ip=packet.dst_ip,
        )
        if verdict is not None:
            return PolicyDecision(verdict, "flow policy")
        dst_ip = packet.dst_ip
        if dst_ip is not None and not dst_ip.startswith(self.overlays.local_subnet_prefix):
            if dst_ip.startswith(("224.", "239.", "255.", "ff02:")):
                # Link-local multicast/broadcast stays inside the overlay.
                return PolicyDecision(True, "local multicast")
            return self.overlays.check_internet(src, dst_ip)
        if packet.dst_mac in self.gateway_macs:
            return PolicyDecision(True, "to gateway")
        if packet.dst_mac and packet.dst_mac != "ff:ff:ff:ff:ff:ff":
            return self.overlays.check_device_to_device(src, packet.dst_mac)
        return PolicyDecision(True, "broadcast within overlay")

    def _forward_actions(self, controller: Controller, event: PacketIn) -> tuple[Action, ...]:
        packet = event.packet
        dst_ip = packet.dst_ip
        if dst_ip is not None and not dst_ip.startswith(self.overlays.local_subnet_prefix):
            if not dst_ip.startswith(("224.", "239.", "255.", "ff02:")):
                return (Action.output(self.wan_port),)
        out_port = controller.switch.port_of(packet.dst_mac) if packet.dst_mac else None
        if out_port is None or out_port == event.in_port:
            return (Action.flood(),)
        return (Action.output(out_port),)

    # --- the module hook ------------------------------------------------------

    def on_packet_in(self, controller: Controller, event: PacketIn) -> Decision | None:
        packet = event.packet
        src = packet.src_mac
        if not src or src in self.gateway_macs or event.in_port == self.wan_port:
            return None  # gateway/WAN traffic: let the learning switch handle it
        if src in self.removal_pending:
            # Still transmitting: removal has not happened; refresh the
            # sighting and keep the device fully contained.
            self.removal_pending[src] = event.timestamp
            return Decision(actions=(Action.drop(),))
        self._snoop_dhcp(event)
        monitor_event = self.monitor.observe(event.timestamp, packet)
        if monitor_event is not None:
            self.complete_profiling(monitor_event, now=event.timestamp)
        if self.monitor.is_profiling(src) or not self.monitor.is_profiled(src):
            # Still profiling: forward, but keep the controller in the path.
            return Decision(actions=self._forward_actions(controller, event))
        decision = self._policy_for(event)
        # ip_src is pinned so a later source-spoofed packet cannot ride an
        # allow rule installed for the device's legitimate address.
        match = FlowMatch(
            eth_src=src,
            eth_dst=packet.dst_mac or None,
            ip_src=packet.src_ip,
            ip_dst=packet.dst_ip,
            tp_dst=packet.dst_port,
        )
        if decision.allowed:
            actions = self._forward_actions(controller, event)
        else:
            self.policy_denials += 1
            self.audit.record(
                event.timestamp,
                AuditEventType.FLOW_DENIED,
                src,
                f"dst={packet.dst_ip or packet.dst_mac} reason={decision.reason}",
            )
            actions = (Action.drop(),)
        rule = FlowRule(
            match=match,
            actions=actions,
            priority=_ENFORCE_PRIORITY,
            idle_timeout=_FLOW_IDLE_TIMEOUT,
        )
        return Decision(actions=actions, install=(rule,))
