"""The Security Gateway (user-premises component) of IoT Sentinel."""

from .audit import AuditEvent, AuditEventType, AuditLog
from .gateway import WAN_PORT, AttachedDevice, SecurityGateway
from .monitor import DeviceMonitor, MonitorEvent
from .sentinel_module import SentinelModule, UserNotification
from .wifi import Credential, LegacyMigration, WPSRegistrar

__all__ = [
    "WAN_PORT",
    "AttachedDevice",
    "AuditEvent",
    "AuditEventType",
    "AuditLog",
    "Credential",
    "DeviceMonitor",
    "LegacyMigration",
    "MonitorEvent",
    "SecurityGateway",
    "SentinelModule",
    "UserNotification",
    "WPSRegistrar",
]
