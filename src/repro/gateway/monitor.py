"""Device monitoring: new-MAC detection and per-device capture.

The Security Gateway watches all traffic on its interfaces; when a MAC it
has never seen starts talking, it opens a fingerprinting session (Sect.
IV-A) and collects that device's packets until the setup-phase detector
fires.  For legacy installations (Sect. VIII-A) the same machinery can be
pointed at an *already-connected* device to profile its standby traffic.

Instrumented with ``repro.obs``: packets seen, sessions opened/completed
(labelled by mode) and setup-phase detector fires — the operational
counters behind the Fig. 6 overhead view; see ``docs/observability.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.extractor import FingerprintExtractor, SetupPhaseDetector
from repro.core.fingerprint import Fingerprint
from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.obs import names as obs_names
from repro.packets.batch import PacketBatch
from repro.packets.decoder import DecodedPacket

__all__ = ["MonitorEvent", "DeviceMonitor"]


@dataclass(frozen=True)
class MonitorEvent:
    """Emitted when a device's profiling session completes."""

    device_mac: str
    fingerprint: Fingerprint
    packet_count: int
    mode: str  # "setup" or "standby"


class DeviceMonitor:
    """Tracks devices and runs one fingerprint extractor per new device.

    With ``buffer_completions=True`` the monitor runs in the fleet-scale
    *batched* mode: sessions that complete inside :meth:`observe` are
    queued instead of returned, and a periodic :meth:`drain_completed`
    sweep hands the whole batch to ``SentinelModule.process_batch`` for
    one compiled-bank identification pass.  Until drained, a completed
    device counts as profiled but has no directive, so the enforcement
    path holds it at default-deny (see ``docs/scaling.md``).
    :meth:`flush` always completes immediately, bypassing the buffer.
    """

    def __init__(
        self,
        *,
        detector_factory=SetupPhaseDetector,
        ignore_macs: set[str] | None = None,
        buffer_completions: bool = False,
    ) -> None:
        self._detector_factory = detector_factory
        self._ignore = set(ignore_macs or ())
        self._sessions: dict[str, FingerprintExtractor] = {}
        self._modes: dict[str, str] = {}
        self._profiled: set[str] = set()
        self.buffer_completions = buffer_completions
        # The completion buffer is the one piece of monitor state a drain
        # sweep may read from another thread than the capture loop writes
        # from; every ``_completed`` access happens under this lock.
        self._lock = threading.Lock()
        self._completed: list[MonitorEvent] = []

    # --- bookkeeping --------------------------------------------------------

    @property
    def profiling(self) -> list[str]:
        """MACs currently being fingerprinted."""
        return sorted(self._sessions)

    @property
    def profiled(self) -> list[str]:
        """MACs whose profiling has completed."""
        return sorted(self._profiled)

    def is_profiling(self, mac: str) -> bool:
        return mac in self._sessions

    def is_profiled(self, mac: str) -> bool:
        return mac in self._profiled

    def ignore(self, mac: str) -> None:
        """Never profile this MAC (e.g. the gateway's own interfaces)."""
        self._ignore.add(mac)

    def forget(self, mac: str) -> None:
        """Drop all state for a device (it left the network)."""
        self._sessions.pop(mac, None)
        self._modes.pop(mac, None)
        self._profiled.discard(mac)
        with self._lock:
            if self._completed:
                self._completed = [e for e in self._completed if e.device_mac != mac]
                self._sync_buffered_gauge()

    def mark_profiled(self, mac: str) -> None:
        """Record a device as already profiled without a capture session.

        Used when enforcement state is provisioned out-of-band (e.g. the
        performance experiments pre-authorize their measurement devices).
        """
        self._sessions.pop(mac, None)
        self._modes.pop(mac, None)
        self._profiled.add(mac)

    def start_standby_profiling(self, mac: str) -> None:
        """Re-profile an already-known device from its standby traffic.

        Legacy-installation support (Sect. VIII-A): fingerprinting happens
        after the device has long been connected, based on heartbeat /
        normal-operation traffic instead of the setup dialogue.
        """
        self._profiled.discard(mac)
        self._sessions[mac] = FingerprintExtractor(mac, detector=self._detector_factory())
        self._modes[mac] = "standby"
        obs_counter(obs_names.METRIC_SESSIONS_OPENED, mode="standby").inc()

    def _sync_buffered_gauge(self) -> None:
        """Re-publish the buffer depth; call after every ``_completed`` change."""
        obs_gauge(obs_names.METRIC_COMPLETIONS_BUFFERED).set(float(len(self._completed)))

    # --- the observation path ----------------------------------------------

    def observe(self, timestamp: float, packet: DecodedPacket) -> MonitorEvent | None:
        """Feed one packet seen by the gateway; may complete a session.

        A capture record whose timestamp runs backwards (clock skew,
        out-of-order delivery) is dropped and counted — one bad clock must
        not abort the whole observation sweep.
        """
        obs_counter(obs_names.METRIC_PACKETS_SEEN).inc()
        mac = packet.src_mac
        if not mac or mac in self._ignore or mac in self._profiled:
            return None
        session = self._sessions.get(mac)
        if session is None:
            session = FingerprintExtractor(mac, detector=self._detector_factory())
            self._sessions[mac] = session
            self._modes[mac] = "setup"
            obs_counter(obs_names.METRIC_SESSIONS_OPENED, mode="setup").inc()
        try:
            done = session.add(timestamp, packet)
        except ValueError:
            obs_counter(obs_names.METRIC_PACKETS_DROPPED, reason="clock").inc()
            return None
        if done:
            obs_counter(obs_names.METRIC_DETECTOR_FIRES).inc()
            event = self._complete(mac)
            if self.buffer_completions:
                with self._lock:
                    self._completed.append(event)
                    self._sync_buffered_gauge()
                return None
            return event
        return None

    def observe_batch(self, batch: PacketBatch) -> list[MonitorEvent]:
        """Feed a columnar capture chunk in one call; returns completions.

        The batch twin of repeated :meth:`observe` calls: rows are grouped
        by source MAC (arrival order preserved within each device) and each
        device's slice runs through the vectorized extractor.  Per-packet
        semantics are unchanged — empty/ignored/profiled MACs are skipped,
        backwards timestamps are dropped and counted, a completion inside
        the chunk ends that device's slice and later rows from it are
        ignored, and with ``buffer_completions`` events queue for
        :meth:`drain_completed` instead of being returned.  Only the event
        *ordering* can differ from the scalar sweep: events come out
        grouped by device first-appearance rather than interleaved by
        firing time.
        """
        n = len(batch)
        if n:
            obs_counter(obs_names.METRIC_PACKETS_SEEN).inc(float(n))
        groups: dict[str, list[int]] = {}
        for i, mac in enumerate(batch.src_macs):
            if mac:
                groups.setdefault(mac, []).append(i)
        ts_all = batch.timestamps.tolist()
        events: list[MonitorEvent] = []
        for mac, rows in groups.items():
            if mac in self._ignore or mac in self._profiled:
                continue
            session = self._sessions.get(mac)
            if session is None:
                session = FingerprintExtractor(mac, detector=self._detector_factory())
                self._sessions[mac] = session
                self._modes[mac] = "setup"
                obs_counter(obs_names.METRIC_SESSIONS_OPENED, mode="setup").inc()
            # Clock pre-filter: a packet survives iff its timestamp is >=
            # the running max of every earlier surviving one — dropped
            # packets never raise the floor.  Plain Python on purpose:
            # fleet chunks splinter into tiny per-device slices where
            # array-call overhead dominates.
            last = session.detector.last_timestamp
            floor = float("-inf") if last is None else last
            kept_rows: list[int] = []
            kept_pos: list[int] = []
            kept_ts: list[float] = []
            for pos, i in enumerate(rows):
                t = ts_all[i]
                if t >= floor:
                    kept_rows.append(i)
                    kept_pos.append(pos)
                    kept_ts.append(t)
                    floor = t
            accepted, done = session.add_batch(kept_ts, batch, rows=kept_rows)
            if done:
                # Rows past the firing packet never reach a scalar session
                # (the device counts as profiled), so only drops before it
                # are clock drops — and the kept rows before the firing
                # one are exactly the accepted ones.
                n_dropped = kept_pos[accepted] - accepted
            else:
                n_dropped = len(rows) - len(kept_rows)
            if n_dropped:
                obs_counter(obs_names.METRIC_PACKETS_DROPPED, reason="clock").inc(
                    float(n_dropped)
                )
            if done:
                obs_counter(obs_names.METRIC_DETECTOR_FIRES).inc()
                event = self._complete(mac)
                if self.buffer_completions:
                    with self._lock:
                        self._completed.append(event)
                        self._sync_buffered_gauge()
                else:
                    events.append(event)
        return events

    def drain_completed(self) -> list[MonitorEvent]:
        """Take (and clear) the buffered completion events, oldest first."""
        with self._lock:
            events = self._completed
            self._completed = []
            if events:
                self._sync_buffered_gauge()
        return events

    def flush(self, mac: str) -> MonitorEvent | None:
        """Force-complete a session (e.g. gateway-side timeout sweep).

        Always returns the event directly, even with ``buffer_completions``
        on: callers such as ``SecurityGateway.finish_profiling`` need the
        fingerprint immediately, so the event never enters ``_completed``
        and the buffer-depth gauge is unaffected.
        """
        if mac not in self._sessions:
            return None
        self._sessions[mac].finish()
        return self._complete(mac)

    def _complete(self, mac: str) -> MonitorEvent:
        session = self._sessions.pop(mac)
        mode = self._modes.pop(mac)
        self._profiled.add(mac)
        obs_counter(obs_names.METRIC_SESSIONS_COMPLETED, mode=mode).inc()
        fingerprint = session.fingerprint()
        return MonitorEvent(
            device_mac=mac,
            fingerprint=fingerprint,
            packet_count=len(fingerprint),
            mode=mode,
        )
