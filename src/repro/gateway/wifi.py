"""WiFi credential management: device-specific WPA2-PSKs via WPS.

Models Sect. III-A and the legacy-migration flow of Sect. VIII-A: every
device gets its *own* PSK (so one compromised device cannot eavesdrop on
or impersonate the others), keys are bound to an overlay (trusted /
untrusted), and WPS re-keying moves clean legacy devices from the shared
legacy PSK into the trusted overlay.  Cryptography is modelled as opaque
high-entropy strings — the enforcement logic only needs key identity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["Credential", "WPSRegistrar", "LegacyMigration"]


@dataclass(frozen=True)
class Credential:
    """A device-specific WPA2-PSK bound to a network overlay."""

    device_mac: str
    psk: str
    overlay: str  # "trusted" or "untrusted"
    generation: int = 0


class WPSRegistrar:
    """Issues and rotates device-specific PSKs."""

    def __init__(self, seed: str = "iot-sentinel") -> None:
        self._seed = seed
        self._credentials: dict[str, Credential] = {}
        self._generations: dict[str, int] = {}

    def _derive(self, mac: str, overlay: str, generation: int) -> str:
        material = f"{self._seed}|{mac}|{overlay}|{generation}"
        return hashlib.sha256(material.encode()).hexdigest()[:32]

    def provision(self, mac: str, overlay: str = "untrusted") -> Credential:
        """Issue a PSK for a device joining via WPS (or manual setup)."""
        if overlay not in ("trusted", "untrusted"):
            raise ValueError(f"unknown overlay {overlay!r}")
        generation = self._generations.get(mac, -1) + 1
        self._generations[mac] = generation
        credential = Credential(
            device_mac=mac,
            psk=self._derive(mac, overlay, generation),
            overlay=overlay,
            generation=generation,
        )
        self._credentials[mac] = credential
        return credential

    def rekey(self, mac: str, overlay: str) -> Credential:
        """WPS re-keying: rotate the PSK, possibly changing overlay."""
        if mac not in self._credentials:
            raise KeyError(f"no credential for {mac}")
        return self.provision(mac, overlay)

    def revoke(self, mac: str) -> None:
        if mac not in self._credentials:
            raise KeyError(f"no credential for {mac}")
        del self._credentials[mac]

    def credential_of(self, mac: str) -> Credential | None:
        return self._credentials.get(mac)

    def authenticate(self, mac: str, psk: str) -> bool:
        """Would the AP accept this MAC/PSK pair right now?"""
        credential = self._credentials.get(mac)
        return credential is not None and credential.psk == psk


class LegacyMigration:
    """The Sect. VIII-A migration of a legacy WPA2-Personal network.

    All legacy devices start in the untrusted overlay under the shared
    PSK.  After identification, devices without known vulnerabilities are
    re-keyed into the trusted overlay (if they support WPS re-keying);
    devices that cannot re-key either stay untrusted on the old PSK or are
    cut off when the shared PSK is deprecated.
    """

    def __init__(self, registrar: WPSRegistrar, legacy_psk: str = "legacy-shared-psk") -> None:
        self.registrar = registrar
        self.legacy_psk = legacy_psk
        self.legacy_psk_deprecated = False
        self._legacy_members: set[str] = set()

    def enroll_legacy(self, mac: str) -> None:
        """Register a device as part of the pre-existing installation."""
        self._legacy_members.add(mac)

    @property
    def legacy_members(self) -> list[str]:
        return sorted(self._legacy_members)

    def migrate(self, mac: str, *, clean: bool, supports_rekeying: bool) -> str:
        """Migrate one legacy device; returns its final disposition.

        Returns one of ``"trusted"``, ``"untrusted"``, ``"disconnected"``.
        """
        if mac not in self._legacy_members:
            raise KeyError(f"{mac} is not a legacy member")
        if clean and supports_rekeying:
            self.registrar.provision(mac, "trusted")
            self._legacy_members.discard(mac)
            return "trusted"
        if not clean:
            # Vulnerable devices remain strictly in the untrusted overlay.
            self.registrar.provision(mac, "untrusted")
            self._legacy_members.discard(mac)
            return "untrusted"
        # Clean but cannot re-key: fate depends on the shared PSK.
        if self.legacy_psk_deprecated:
            self._legacy_members.discard(mac)
            return "disconnected"
        return "untrusted"

    def deprecate_legacy_psk(self) -> list[str]:
        """Kill the shared PSK; returns devices that lose connectivity."""
        self.legacy_psk_deprecated = True
        dropped = sorted(self._legacy_members)
        self._legacy_members.clear()
        return dropped
