"""The Security Gateway: the user-premises half of IoT Sentinel.

Wires together the data plane (:class:`~repro.sdn.switch.OpenVSwitch`),
the SDN controller with the Sentinel module, device monitoring, WPS
credential provisioning, the enforcement-rule cache and the overlay
manager (Fig. 1).  Supports a no-filtering mode (plain learning switch)
used as the baseline in the Table V / VI / Fig. 6 experiments.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.sdn.controller import Controller, LearningSwitchModule
from repro.sdn.overlay import IsolationLevel, OverlayManager
from repro.sdn.rules import EnforcementRuleCache
from repro.sdn.switch import ForwardingResult, OpenVSwitch
from repro.securityservice.protocol import IsolationDirective, Transport

from .audit import AuditEventType, AuditLog
from .monitor import DeviceMonitor
from .sentinel_module import SentinelModule, UserNotification
from .wifi import WPSRegistrar

__all__ = ["AttachedDevice", "SecurityGateway"]

#: The switch port leading to the Internet uplink.
WAN_PORT = 1


@dataclass(frozen=True)
class AttachedDevice:
    """Bookkeeping for one device plugged into / associated with the AP."""

    mac: str
    port: int
    interface: str  # "wifi" or "eth0"


class SecurityGateway:
    """A gateway router running the IoT Sentinel stack.

    Parameters
    ----------
    transport:
        Channel to the IoT Security Service (required when filtering).
    filtering:
        When False, the gateway is a plain learning switch — the paper's
        "without filtering" baseline.
    notify_user:
        Callback for user notifications (mitigation strategy III-C3).
    batch_profiling:
        When True, completed profiling sessions are buffered in the
        monitor and reported in batches by :meth:`drain_profiling` (one
        compiled-bank identification pass per sweep) instead of one
        IoTSSP round trip per device.  Between completion and the next
        drain a device sits at default-deny — the fleet-scale posture
        ``docs/scaling.md`` describes.
    """

    def __init__(
        self,
        transport: Transport | None = None,
        *,
        filtering: bool = True,
        gateway_mac: str = "02:00:00:00:00:01",
        gateway_ip: str = "192.168.1.1",
        rule_cache_capacity: int | None = None,
        notify_user: Callable[[UserNotification], None] | None = None,
        batch_profiling: bool = False,
    ) -> None:
        if filtering and transport is None:
            raise ValueError("a filtering gateway needs a transport to the IoTSSP")
        self.gateway_mac = gateway_mac
        self.gateway_ip = gateway_ip
        self.filtering = filtering
        self.batch_profiling = batch_profiling
        self.switch = OpenVSwitch(name="security-gateway")
        self.switch.add_port(WAN_PORT)
        self.controller = Controller(switch=self.switch)
        self.monitor = DeviceMonitor(
            ignore_macs={gateway_mac}, buffer_completions=batch_profiling
        )
        self.wps = WPSRegistrar()
        self.overlays = OverlayManager()
        self.rule_cache = EnforcementRuleCache(capacity=rule_cache_capacity)
        self.audit = AuditLog()
        self.sentinel: SentinelModule | None = None
        if filtering:
            assert transport is not None
            self.sentinel = SentinelModule(
                monitor=self.monitor,
                transport=transport,
                overlays=self.overlays,
                rule_cache=self.rule_cache,
                wan_port=WAN_PORT,
                gateway_macs={gateway_mac},
                notify=notify_user,
                audit=self.audit,
            )
            self.controller.register(self.sentinel)
        self.controller.register(LearningSwitchModule())
        self._devices: dict[str, AttachedDevice] = {}
        self._next_port = WAN_PORT + 1

    # --- attachment ----------------------------------------------------------

    def attach_device(self, mac: str, interface: str = "wifi", now: float = 0.0) -> AttachedDevice:
        """Associate/plug in a device; gives it its own switch port.

        Each wireless client gets a dedicated logical port, modelling the
        OpenWRT wireless-isolation redirect that forces client-to-client
        traffic through OVS (Sect. V).
        """
        if mac in self._devices:
            raise ValueError(f"{mac} already attached")
        if interface not in ("wifi", "eth0"):
            raise ValueError(f"unknown interface {interface!r}")
        port = self._next_port
        self._next_port += 1
        self.switch.add_port(port)
        device = AttachedDevice(mac=mac, port=port, interface=interface)
        self._devices[mac] = device
        # The association/link table tells the bridge where the device is.
        self.switch.learn(mac, port)
        if interface == "wifi":
            self.wps.provision(mac)
        self.audit.record(now, AuditEventType.DEVICE_ATTACHED, mac, f"port={port} if={interface}")
        return device

    def detach_device(self, mac: str, now: float = 0.0) -> None:
        device = self._devices.pop(mac, None)
        if device is None:
            raise KeyError(mac)
        self.monitor.forget(mac)
        self.overlays.forget(mac)
        self.rule_cache.remove(mac)
        if self.sentinel is not None:
            self.sentinel.forget(mac)
        # Flush the data plane too: installed flow entries and the learned
        # port, so a re-attached or recycled MAC cannot ride stale rules.
        self._flush_device_rules(mac)
        self.switch.unlearn(mac)
        self.audit.record(now, AuditEventType.DEVICE_DETACHED, mac)

    def device(self, mac: str) -> AttachedDevice:
        return self._devices[mac]

    @property
    def attached_macs(self) -> list[str]:
        return sorted(self._devices)

    # --- data path -------------------------------------------------------------

    def process_frame(self, mac: str, frame: bytes, now: float = 0.0) -> ForwardingResult:
        """Inject a frame from an attached device into the data plane."""
        device = self._devices.get(mac)
        if device is None:
            raise KeyError(f"{mac} is not attached")
        return self.switch.process_frame(device.port, frame, now)

    def process_wan_frame(self, frame: bytes, now: float = 0.0) -> ForwardingResult:
        """Inject a frame arriving from the Internet uplink."""
        return self.switch.process_frame(WAN_PORT, frame, now)

    def finish_profiling(self, mac: str, now: float = 0.0) -> IsolationDirective | None:
        """Force-close a device's profiling session (idle-timeout sweep).

        Returns the directive the device ended up with — provisional
        STRICT quarantine when the IoTSSP could not be reached (see
        ``docs/robustness.md``), the service's answer otherwise.
        """
        if self.sentinel is None:
            return None
        event = self.monitor.flush(mac)
        if event is None:
            return self.sentinel.directives.get(mac)
        return self.sentinel.complete_profiling(event, now=now)

    def drain_profiling(self, now: float = 0.0) -> dict[str, IsolationDirective]:
        """Report all buffered profiling completions in one batch (sweep).

        The batched counterpart of the per-packet ``complete_profiling``
        path: drains the monitor's completion buffer, pushes the whole
        batch through ``SentinelModule.process_batch`` (one compiled-bank
        stage-1 pass on a plain transport), then flushes each answered
        device's flow rules so its directive replaces the default-deny
        entries installed while it waited.  Returns directive-per-MAC.
        """
        events = self.monitor.drain_completed()
        if self.sentinel is None or not events:
            return {}
        directives = self.sentinel.process_batch(events, now=now)
        for mac in directives:
            self._flush_device_rules(mac)
        return directives

    def preauthorize(
        self,
        mac: str,
        level: IsolationLevel,
        permitted_endpoints: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        """Provision enforcement state for a device without profiling it.

        Used by the performance experiments (Table V / Fig. 6) where the
        devices' isolation levels are a given and only the enforcement
        path is being measured.
        """
        from repro.sdn.rules import EnforcementRule

        if mac not in self._devices:
            raise KeyError(f"{mac} is not attached")
        self.monitor.mark_profiled(mac)
        if self.filtering:
            allowed = (
                frozenset(permitted_endpoints)
                if level is IsolationLevel.RESTRICTED
                else frozenset()
            )
            self.rule_cache.insert(
                EnforcementRule(device_mac=mac, level=level, permitted_ips=allowed)
            )
            self.overlays.assign(mac, level, allowed)

    @property
    def pending_report_count(self) -> int:
        """Fingerprint reports awaiting IoTSSP re-submission (0 when healthy)."""
        return 0 if self.sentinel is None else self.sentinel.pending_report_count

    def refresh_directives(self, now: float, *, force: bool = False) -> list[str]:
        """Periodic update query to the IoT Security Service (Sect. V).

        The sweep first re-submits pending reports from degraded-mode
        devices (provisional STRICT quarantine → the service's real
        directive once it recovers), then re-assesses devices whose
        directive TTL has lapsed.  Every device whose level or allow-list
        changed gets its installed flow rules flushed so the new policy
        applies to the next packet of every flow.  Returns the changed
        MACs.
        """
        if self.sentinel is None:
            return []
        changed = self.sentinel.retry_pending(now)
        changed += [
            mac
            for mac in self.sentinel.refresh_directives(now, force=force)
            if mac not in changed
        ]
        for mac in changed:
            self._flush_device_rules(mac)
        return changed

    def _flush_device_rules(self, mac: str) -> None:
        """Remove a device's installed flow-table entries (policy changed)."""
        stale = [rule for rule in self.switch.table if rule.match.eth_src == mac]
        for rule in stale:
            self.switch.table.remove(rule)

    def set_flow_policies(self, mac: str, policies: tuple) -> None:
        """Attach flow-granular filtering policies to a device's rule.

        Replaces the cached enforcement rule with one carrying the given
        :class:`~repro.sdn.rules.FlowPolicy` tuple and flushes the device's
        installed flow-table entries so the new policy takes effect on the
        next packet of each flow.
        """
        from repro.sdn.rules import EnforcementRule

        current = self.rule_cache.lookup(mac)
        if current is None:
            raise KeyError(f"no enforcement rule for {mac}")
        self.rule_cache.insert(
            EnforcementRule(
                device_mac=current.device_mac,
                level=current.level,
                permitted_ips=current.permitted_ips,
                flow_policies=tuple(policies),
            )
        )
        # Drop this device's reactive flow entries so decisions re-punt.
        self._flush_device_rules(mac)

    # --- introspection ----------------------------------------------------------

    def isolation_level(self, mac: str) -> IsolationLevel | None:
        return self.overlays.level_of(mac)

    def directive_for(self, mac: str) -> IsolationDirective | None:
        if self.sentinel is None:
            return None
        return self.sentinel.directives.get(mac)

    @property
    def flow_rule_count(self) -> int:
        return len(self.switch.table)
