"""The 23 packet features of Table I.

Order and semantics follow the paper exactly:

* 16 binary protocol-presence features (link, network, transport and
  application layers),
* 2 binary IP-option features (padding, router alert),
* packet size (integer) and raw-data presence (binary),
* a per-fingerprint destination-IP counter (integer), and
* source / destination port *classes* (0 = none, 1 = well-known,
  2 = registered, 3 = dynamic).

None of the features read packet payload, so fingerprints extract equally
from encrypted traffic.
"""

from __future__ import annotations

import numpy as np

from repro.packets.decoder import DecodedPacket

from .constants import NUM_FEATURES

__all__ = [
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "INTEGER_FEATURES",
    "DestinationCounter",
    "port_class",
    "packet_features",
]

#: Feature names in Table I order; the index is the feature's row in F.
FEATURE_NAMES: tuple[str, ...] = (
    "arp",
    "llc",
    "ip",
    "icmp",
    "icmpv6",
    "eapol",
    "tcp",
    "udp",
    "http",
    "https",
    "dhcp",
    "bootp",
    "ssdp",
    "dns",
    "mdns",
    "ntp",
    "ip_option_padding",
    "ip_option_router_alert",
    "packet_size",
    "raw_data",
    "dst_ip_counter",
    "src_port_class",
    "dst_port_class",
)

if len(FEATURE_NAMES) != NUM_FEATURES:  # pragma: no cover - import-time sanity
    raise AssertionError(
        f"FEATURE_NAMES has {len(FEATURE_NAMES)} entries, expected NUM_FEATURES="
        f"{NUM_FEATURES} (repro.core.constants)"
    )

#: Names of the integer-valued features (all others are binary).
INTEGER_FEATURES = frozenset({"packet_size", "dst_ip_counter", "src_port_class", "dst_port_class"})

PORT_CLASS_NONE = 0
PORT_CLASS_WELL_KNOWN = 1
PORT_CLASS_REGISTERED = 2
PORT_CLASS_DYNAMIC = 3


def port_class(port: int | None) -> int:
    """Map a port number to the paper's four-valued port class."""
    if port is None:
        return PORT_CLASS_NONE
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range")
    if port <= 1023:
        return PORT_CLASS_WELL_KNOWN
    if port <= 49151:
        return PORT_CLASS_REGISTERED
    return PORT_CLASS_DYNAMIC


class DestinationCounter:
    """Per-fingerprint destination-IP numbering.

    The first destination address observed maps to 1, the second new one to
    2, and so on; repeated destinations keep their number.  This encodes
    *how many distinct endpoints* a device contacts during setup and in
    which order — without recording the addresses themselves.
    """

    def __init__(self) -> None:
        self._numbers: dict[str, int] = {}

    def number_for(self, dst_ip: str | None) -> int:
        """Counter value for a destination (0 when the packet has no IP)."""
        if dst_ip is None:
            return 0
        if dst_ip not in self._numbers:
            self._numbers[dst_ip] = len(self._numbers) + 1
        return self._numbers[dst_ip]

    @property
    def distinct_destinations(self) -> int:
        return len(self._numbers)


def packet_features(packet: DecodedPacket, counter: DestinationCounter) -> np.ndarray:
    """Compute the 23-feature vector for one decoded packet.

    ``counter`` carries the fingerprint-scoped destination-IP numbering
    state and is mutated by the call.
    """
    return np.array(
        [
            int(packet.is_arp),
            int(packet.is_llc),
            int(packet.is_ip),
            int(packet.is_icmp),
            int(packet.is_icmpv6),
            int(packet.is_eapol),
            int(packet.is_tcp),
            int(packet.is_udp),
            int(packet.is_http),
            int(packet.is_https),
            int(packet.is_dhcp),
            int(packet.is_bootp),
            int(packet.is_ssdp),
            int(packet.is_dns),
            int(packet.is_mdns),
            int(packet.is_ntp),
            int(packet.ip_option_padding),
            int(packet.ip_option_router_alert),
            packet.size,
            int(packet.has_raw_data),
            counter.number_for(packet.dst_ip),
            port_class(packet.src_port),
            port_class(packet.dst_port),
        ],
        dtype=np.float64,
    )
