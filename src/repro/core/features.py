"""The 23 packet features of Table I.

Order and semantics follow the paper exactly:

* 16 binary protocol-presence features (link, network, transport and
  application layers),
* 2 binary IP-option features (padding, router alert),
* packet size (integer) and raw-data presence (binary),
* a per-fingerprint destination-IP counter (integer), and
* source / destination port *classes* (0 = none, 1 = well-known,
  2 = registered, 3 = dynamic).

None of the features read packet payload, so fingerprints extract equally
from encrypted traffic.
"""

from __future__ import annotations

import numpy as np

from repro.packets.batch import FLAG_NAMES, PacketBatch
from repro.packets.decoder import DecodedPacket

from .constants import NUM_FEATURES

__all__ = [
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "INTEGER_FEATURES",
    "DestinationCounter",
    "port_class",
    "port_class_array",
    "packet_features",
    "batch_features",
]

#: Feature names in Table I order; the index is the feature's row in F.
FEATURE_NAMES: tuple[str, ...] = (
    "arp",
    "llc",
    "ip",
    "icmp",
    "icmpv6",
    "eapol",
    "tcp",
    "udp",
    "http",
    "https",
    "dhcp",
    "bootp",
    "ssdp",
    "dns",
    "mdns",
    "ntp",
    "ip_option_padding",
    "ip_option_router_alert",
    "packet_size",
    "raw_data",
    "dst_ip_counter",
    "src_port_class",
    "dst_port_class",
)

if len(FEATURE_NAMES) != NUM_FEATURES:  # pragma: no cover - import-time sanity
    raise AssertionError(
        f"FEATURE_NAMES has {len(FEATURE_NAMES)} entries, expected NUM_FEATURES="
        f"{NUM_FEATURES} (repro.core.constants)"
    )

#: Names of the integer-valued features (all others are binary).
INTEGER_FEATURES = frozenset({"packet_size", "dst_ip_counter", "src_port_class", "dst_port_class"})

# Column indices used by the batch path; derived, not restated.
_SIZE_IDX = FEATURE_NAMES.index("packet_size")
_RAW_IDX = FEATURE_NAMES.index("raw_data")
_DST_IDX = FEATURE_NAMES.index("dst_ip_counter")
_SPORT_IDX = FEATURE_NAMES.index("src_port_class")
_DPORT_IDX = FEATURE_NAMES.index("dst_port_class")
_N_FLAGS = len(FLAG_NAMES)

if FLAG_NAMES != FEATURE_NAMES[:_N_FLAGS]:  # pragma: no cover - import-time sanity
    raise AssertionError(
        "repro.packets.batch.FLAG_NAMES must match the presence-flag head of "
        "FEATURE_NAMES so flag_matrix() columns line up with Table I"
    )

PORT_CLASS_NONE = 0
PORT_CLASS_WELL_KNOWN = 1
PORT_CLASS_REGISTERED = 2
PORT_CLASS_DYNAMIC = 3


def port_class(port: int | None) -> int:
    """Map a port number to the paper's four-valued port class."""
    if port is None:
        return PORT_CLASS_NONE
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range")
    if port <= 1023:
        return PORT_CLASS_WELL_KNOWN
    if port <= 49151:
        return PORT_CLASS_REGISTERED
    return PORT_CLASS_DYNAMIC


def port_class_array(ports: np.ndarray) -> np.ndarray:
    """Vectorized :func:`port_class`; negative entries encode "no port"."""
    ports = np.asarray(ports)
    out = np.zeros(ports.shape, dtype=np.float64)
    valid = ports >= 0
    out[valid & (ports <= 1023)] = PORT_CLASS_WELL_KNOWN
    out[valid & (ports > 1023) & (ports <= 49151)] = PORT_CLASS_REGISTERED
    out[valid & (ports > 49151)] = PORT_CLASS_DYNAMIC
    return out


class DestinationCounter:
    """Per-fingerprint destination-IP numbering.

    The first destination address observed maps to 1, the second new one to
    2, and so on; repeated destinations keep their number.  This encodes
    *how many distinct endpoints* a device contacts during setup and in
    which order — without recording the addresses themselves.
    """

    def __init__(self) -> None:
        self._numbers: dict[str, int] = {}

    def number_for(self, dst_ip: str | None) -> int:
        """Counter value for a destination (0 when the packet has no IP)."""
        if dst_ip is None:
            return 0
        if dst_ip not in self._numbers:
            self._numbers[dst_ip] = len(self._numbers) + 1
        return self._numbers[dst_ip]

    @property
    def distinct_destinations(self) -> int:
        return len(self._numbers)


def packet_features(packet: DecodedPacket, counter: DestinationCounter) -> np.ndarray:
    """Compute the 23-feature vector for one decoded packet.

    ``counter`` carries the fingerprint-scoped destination-IP numbering
    state and is mutated by the call.
    """
    return np.array(
        [
            int(packet.is_arp),
            int(packet.is_llc),
            int(packet.is_ip),
            int(packet.is_icmp),
            int(packet.is_icmpv6),
            int(packet.is_eapol),
            int(packet.is_tcp),
            int(packet.is_udp),
            int(packet.is_http),
            int(packet.is_https),
            int(packet.is_dhcp),
            int(packet.is_bootp),
            int(packet.is_ssdp),
            int(packet.is_dns),
            int(packet.is_mdns),
            int(packet.is_ntp),
            int(packet.ip_option_padding),
            int(packet.ip_option_router_alert),
            packet.size,
            int(packet.has_raw_data),
            counter.number_for(packet.dst_ip),
            port_class(packet.src_port),
            port_class(packet.dst_port),
        ],
        dtype=np.float64,
    )


# PacketBatch.memo key for the per-chunk feature base (below).
_BASE_KEY = "core.feature_base"


def _feature_base(batch: PacketBatch) -> tuple[np.ndarray, list[int]]:
    """Session-independent feature columns, memoized on the batch.

    Every column of Table I except ``dst_ip_counter`` depends only on the
    packet bytes, so one ``(len(batch), NUM_FEATURES)`` matrix (dst column
    zero) serves every extractor session that slices rows out of the same
    chunk — the monitor's fleet sweep computes it once per chunk instead
    of once per device.  Returned read-only together with ``dst_ids`` as a
    plain list (cheap per-row iteration for the counter fill).
    """
    cached = batch.memo.get(_BASE_KEY)
    if cached is None:
        base = np.zeros((len(batch), NUM_FEATURES), dtype=np.float64)
        base[:, :_N_FLAGS] = batch.flag_matrix()
        base[:, _SIZE_IDX] = batch.sizes
        base[:, _RAW_IDX] = batch.raw
        base[:, _SPORT_IDX] = port_class_array(batch.src_ports)
        base[:, _DPORT_IDX] = port_class_array(batch.dst_ports)
        base.setflags(write=False)
        cached = (base, batch.dst_ids.tolist())
        batch.memo[_BASE_KEY] = cached
    return cached


def batch_features(
    batch: PacketBatch,
    counter: DestinationCounter,
    rows: list[int] | np.ndarray | range | None = None,
) -> np.ndarray:
    """Compute the ``(n, NUM_FEATURES)`` matrix for ``rows`` of the batch.

    ``rows`` selects batch rows in order (default: every row).  Byte-
    identical to stacking :func:`packet_features` over the selected decoded
    packets (pinned by ``tests/core/test_batch_extraction.py``): the
    session-independent columns come off the memoized per-chunk base, and
    the destination counter is advanced row by row in arrival order, so
    the fingerprint-scoped numbering state mutates just as the scalar
    loop would.
    """
    base, ids_all = _feature_base(batch)
    if rows is None:
        out = base.copy()
        ids = ids_all
    else:
        rows = rows.tolist() if isinstance(rows, np.ndarray) else list(rows)
        out = base[rows]
        ids = [ids_all[i] for i in rows]
    if ids:
        keys = batch.dst_keys
        number_for = counter.number_for
        col = [0.0] * len(ids)
        for j, did in enumerate(ids):
            if did >= 0:
                col[j] = float(number_for(keys[did]))
        out[:, _DST_IDX] = col
    return out
