"""Training-data store for device types (the IoTSSP's fingerprint corpus).

The IoT Security Service accumulates labelled fingerprints — initially from
dedicated laboratory experiments, later potentially crowdsourced (Sect.
III-B).  The registry keeps them per device-type label and hands the
identifier everything it needs to (re)train a single type without touching
the others.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .fingerprint import DEFAULT_FP_PACKETS, Fingerprint

__all__ = ["DeviceTypeRegistry"]


class DeviceTypeRegistry:
    """Labelled fingerprint corpus with per-type access."""

    def __init__(self) -> None:
        self._store: dict[str, list[Fingerprint]] = {}

    def add(self, label: str, fingerprint: Fingerprint) -> None:
        if not label:
            raise ValueError("label must be non-empty")
        self._store.setdefault(label, []).append(fingerprint)

    def add_many(self, label: str, fingerprints: Iterable[Fingerprint]) -> None:
        for fingerprint in fingerprints:
            self.add(label, fingerprint)

    def extend(self, corpus: Mapping[str, Sequence[Fingerprint]]) -> None:
        for label, fingerprints in corpus.items():
            self.add_many(label, fingerprints)

    def remove_type(self, label: str) -> None:
        if label not in self._store:
            raise KeyError(label)
        del self._store[label]

    @property
    def labels(self) -> list[str]:
        return sorted(self._store)

    def __contains__(self, label: str) -> bool:
        return label in self._store

    def __len__(self) -> int:
        return len(self._store)

    def count(self, label: str) -> int:
        return len(self._store.get(label, []))

    def fingerprints(self, label: str) -> list[Fingerprint]:
        if label not in self._store:
            raise KeyError(label)
        return list(self._store[label])

    def positives_matrix(self, label: str, fp_length: int = DEFAULT_FP_PACKETS) -> np.ndarray:
        """Stacked F' vectors of one type."""
        rows = [fp.fixed(fp_length) for fp in self.fingerprints(label)]
        return np.vstack(rows)

    def negatives_matrix(self, label: str, fp_length: int = DEFAULT_FP_PACKETS) -> np.ndarray:
        """Stacked F' vectors of the complement set (all other types)."""
        rows = [
            fp.fixed(fp_length)
            for other, fingerprints in sorted(self._store.items())
            if other != label
            for fp in fingerprints
        ]
        if not rows:
            raise ValueError(f"no negative examples available for {label!r}")
        return np.vstack(rows)
