"""Compatibility shim: the helpers moved to :mod:`repro.ml.parallel`.

The deterministic seeding / thread-pool utilities are consumed by the ML
layer (``repro.ml.forest``) as well as the identifier, so they live below
``repro.core`` in the layering DAG.  This module re-exports them so
existing ``repro.core.parallel`` imports keep working.
"""

from __future__ import annotations

from repro.ml.parallel import (
    derive_entropy,
    label_rng,
    label_seed_sequence,
    parallel_map,
    resolve_n_jobs,
    spawn_generators,
)

__all__ = [
    "derive_entropy",
    "label_seed_sequence",
    "label_rng",
    "spawn_generators",
    "resolve_n_jobs",
    "parallel_map",
]
