"""Baseline identification approaches the paper argues against.

Sect. IV-B and VII-B position IoT Sentinel's design against two
alternatives, both implemented here so the claims can be measured:

* **A single multi-class model** (GTID [20] uses one multi-class neural
  network): :class:`MulticlassIdentifier` with the same F' features.  The
  paper's arguments: adding a type "requires full model relearning", and a
  multi-class model "forces any fingerprint to belong to one learned
  class" — no new-device discovery.
* **Aggregate traffic statistics** (Franklin et al. [12], Pang et al.
  [21] aggregate over an observation window): :func:`aggregate_features`
  discards the temporal dimension entirely — protocol *rates*, size
  moments, port-class histograms — and feeds the same multi-class model.
"""

from __future__ import annotations

import numpy as np

from repro.ml.forest import RandomForestClassifier

from .features import FEATURE_NAMES
from .fingerprint import DEFAULT_FP_PACKETS, Fingerprint
from .registry import DeviceTypeRegistry

__all__ = [
    "aggregate_features",
    "AGGREGATE_DIM",
    "AGG_PACKET_COUNT",
    "AGG_DISTINCT_DESTINATIONS",
    "MulticlassIdentifier",
]

_SIZE_IDX = FEATURE_NAMES.index("packet_size")
_DST_IDX = FEATURE_NAMES.index("dst_ip_counter")
_SRC_PORT_IDX = FEATURE_NAMES.index("src_port_class")
_DST_PORT_IDX = FEATURE_NAMES.index("dst_port_class")

#: Count of leading binary (protocol/option) features in Table I order.
_N_BINARY = _SIZE_IDX
#: Port classes are a 4-valued code, so each histogram has 4 bins.
_N_PORT_CLASSES = 4

# Aggregate-vector layout, as named offsets: binary-feature rates, then
# size moments (mean/std/min/max), two scalar counts, and the two
# port-class histograms.
_AGG_SIZE_STATS = _N_BINARY
AGG_PACKET_COUNT = _AGG_SIZE_STATS + 4
AGG_DISTINCT_DESTINATIONS = AGG_PACKET_COUNT + 1
_AGG_SRC_PORT_HIST = AGG_DISTINCT_DESTINATIONS + 1
_AGG_DST_PORT_HIST = _AGG_SRC_PORT_HIST + _N_PORT_CLASSES
AGGREGATE_DIM = _AGG_DST_PORT_HIST + _N_PORT_CLASSES


def aggregate_features(fingerprint: Fingerprint) -> np.ndarray:
    """Order-free summary statistics of one capture (the [12]/[21] style).

    Everything the 23 features observe, aggregated over the whole setup
    window with the packet *sequence* deliberately discarded.
    """
    rows = fingerprint.rows
    out = np.zeros(AGGREGATE_DIM)
    if len(rows) == 0:
        return out
    # Rates of the binary protocol/option features.
    out[:_N_BINARY] = rows[:, :_N_BINARY].mean(axis=0)
    sizes = rows[:, _SIZE_IDX]
    out[_AGG_SIZE_STATS : _AGG_SIZE_STATS + 4] = (
        sizes.mean(),
        sizes.std(),
        sizes.min(),
        sizes.max(),
    )
    out[AGG_PACKET_COUNT] = len(rows)
    out[AGG_DISTINCT_DESTINATIONS] = rows[:, _DST_IDX].max()
    for k in range(_N_PORT_CLASSES):
        out[_AGG_SRC_PORT_HIST + k] = float(np.mean(rows[:, _SRC_PORT_IDX] == k))
        out[_AGG_DST_PORT_HIST + k] = float(np.mean(rows[:, _DST_PORT_IDX] == k))
    return out


class MulticlassIdentifier:
    """One multi-class Random Forest over all device types (GTID-style).

    ``features``: ``"sequence"`` uses the paper's F' vectors; ``"aggregate"``
    uses order-free statistics.  Unlike the per-type classifier bank, (a)
    :meth:`add_type` must retrain the entire model, and (b) every
    fingerprint is forced into one known class — there is no reject path.
    """

    def __init__(
        self,
        *,
        features: str = "sequence",
        fp_length: int = DEFAULT_FP_PACKETS,
        n_estimators: int = 20,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if features not in ("sequence", "aggregate"):
            raise ValueError(f"unknown feature mode {features!r}")
        self.features = features
        self.fp_length = fp_length
        self.n_estimators = n_estimators
        self._rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self._model: RandomForestClassifier | None = None
        self.full_retrains = 0

    def _vector(self, fingerprint: Fingerprint) -> np.ndarray:
        if self.features == "sequence":
            return fingerprint.fixed(self.fp_length)
        return aggregate_features(fingerprint)

    def fit(self, registry: DeviceTypeRegistry) -> "MulticlassIdentifier":
        """(Re)train the single model on every type's fingerprints."""
        rows, labels = [], []
        for label in registry.labels:
            for fingerprint in registry.fingerprints(label):
                rows.append(self._vector(fingerprint))
                labels.append(label)
        if len(set(labels)) < 2:
            raise ValueError("need at least two device types to train")
        self._model = RandomForestClassifier(
            n_estimators=self.n_estimators, random_state=self._rng
        ).fit(np.vstack(rows), np.asarray(labels))
        self.full_retrains += 1
        return self

    def add_type(self, registry: DeviceTypeRegistry, label: str) -> None:
        """Adding one type forces a full relearn — the paper's complaint."""
        del label  # the new type's data is already in the registry
        self.fit(registry)

    def identify(self, fingerprint: Fingerprint) -> str:
        """Always returns a known label; there is no 'unknown' outcome."""
        if self._model is None:
            raise RuntimeError("identifier is not trained")
        return str(self._model.predict(self._vector(fingerprint).reshape(1, -1))[0])

    def identify_batch(self, fingerprints: list[Fingerprint]) -> list[str]:
        if self._model is None:
            raise RuntimeError("identifier is not trained")
        if not fingerprints:
            return []
        stacked = np.vstack([self._vector(fp) for fp in fingerprints])
        return [str(label) for label in self._model.predict(stacked)]
