"""The paper's fingerprint dimensions — the single place they are written.

Everything else in the tree (and the test suite) imports these names; the
``sentinel-lint`` SL004 checker rejects bare ``23``/``12``/``276``
literals anywhere near the fingerprinting code so the F → F′ contract of
IoT Sentinel (Miettinen et al., ICDCS 2017) cannot silently drift between
training and inference.
"""

from __future__ import annotations

__all__ = ["NUM_FEATURES", "DEFAULT_FP_PACKETS", "FIXED_VECTOR_DIM"]

#: Features per packet — the 23 rows of Table I.  Must equal
#: ``len(repro.core.features.FEATURE_NAMES)`` (enforced at import time).
NUM_FEATURES = 23

#: Packet slots in the fixed-size F′ — "12 packets was a good trade-off".
DEFAULT_FP_PACKETS = 12

#: Flat dimension of F′: 12 packet slots × 23 features = 276.
FIXED_VECTOR_DIM = DEFAULT_FP_PACKETS * NUM_FEATURES
