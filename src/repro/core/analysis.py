"""Fingerprint and classifier-bank analysis utilities.

Operator-facing introspection: which Table-I features drive each device
type's classifier, and summary statistics of a type's fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.importance import forest_feature_importance

from .features import FEATURE_NAMES, NUM_FEATURES
from .identifier import DeviceIdentifier
from .registry import DeviceTypeRegistry

__all__ = ["FeatureImportanceReport", "classifier_feature_importance", "fingerprint_summary"]


@dataclass(frozen=True)
class FeatureImportanceReport:
    """Aggregated importance of the 23 features for one type's classifier."""

    label: str
    by_feature: dict  # feature name -> importance summed over packet slots

    def top(self, k: int = 5) -> list[tuple[str, float]]:
        ranked = sorted(self.by_feature.items(), key=lambda kv: -kv[1])
        return ranked[:k]


def classifier_feature_importance(
    identifier: DeviceIdentifier, label: str
) -> FeatureImportanceReport:
    """Fold the 276-dimensional F' importances back onto the 23 features.

    The fixed vector concatenates 12 packet slots × 23 features; summing
    each feature's importance across slots answers "which *kind* of
    observation matters", independent of packet position.
    """
    model = identifier._models.get(label)
    if model is None:
        raise KeyError(label)
    flat = forest_feature_importance(
        model.classifier, identifier.fp_length * NUM_FEATURES
    )
    by_feature = {name: 0.0 for name in FEATURE_NAMES}
    for index, value in enumerate(flat):
        by_feature[FEATURE_NAMES[index % NUM_FEATURES]] += float(value)
    return FeatureImportanceReport(label=label, by_feature=by_feature)


def fingerprint_summary(registry: DeviceTypeRegistry, label: str) -> dict:
    """Descriptive statistics of one type's fingerprints."""
    fingerprints = registry.fingerprints(label)
    lengths = np.array([len(fp) for fp in fingerprints])
    protocol_rates = {}
    rows = np.vstack([fp.rows for fp in fingerprints])
    for index, name in enumerate(FEATURE_NAMES[:18]):
        protocol_rates[name] = float(rows[:, index].mean())
    sizes = rows[:, FEATURE_NAMES.index("packet_size")]
    destinations = [int(fp.rows[:, FEATURE_NAMES.index("dst_ip_counter")].max()) for fp in fingerprints]
    return {
        "fingerprints": len(fingerprints),
        "length_mean": float(lengths.mean()),
        "length_min": int(lengths.min()),
        "length_max": int(lengths.max()),
        "packet_size_mean": float(sizes.mean()),
        "distinct_destinations_mean": float(np.mean(destinations)),
        "protocol_rates": protocol_rates,
    }
