"""Two-stage device-type identification (Sect. IV-B).

Stage 1 — *classification*: one binary Random Forest per known device type
votes on the fixed-size fingerprint ``F'``.  Zero accepting classifiers ⇒
the device is a **new/unknown type**; exactly one ⇒ done; several ⇒

Stage 2 — *discrimination*: the full fingerprint ``F`` is compared by
normalized Damerau–Levenshtein distance against (up to) five reference
fingerprints of each accepting type; per-type distances are summed into a
dissimilarity score in [0, 5] and the lowest score wins.

New types can be added (and retired) without retraining any other model —
the paper's scalability argument for the one-classifier-per-type design.

Instrumented with ``repro.obs``: the per-stage spans (``identify``,
``identify.classify[.model]``, ``identify.discriminate``) mirror the
Table IV step breakdown — see ``docs/observability.md``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.ml.compiled import CompiledBank
from repro.ml.forest import RandomForestClassifier
from repro.ml.parallel import derive_entropy, label_rng, parallel_map
from repro.ml.sampling import build_binary_training_set
from repro.obs import counter as obs_counter
from repro.obs import names as obs_names
from repro.obs import span as obs_span

from .editdistance import dissimilarity_score_grouped
from .fingerprint import DEFAULT_FP_PACKETS, Fingerprint
from .registry import DeviceTypeRegistry

__all__ = ["UNKNOWN_DEVICE", "IdentificationResult", "DeviceIdentifier"]

#: Sentinel label returned when no classifier accepts a fingerprint.
UNKNOWN_DEVICE = "unknown"


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of one identification, with stage-level detail."""

    label: str
    candidates: tuple[str, ...] = ()
    scores: dict = field(default_factory=dict)
    used_discrimination: bool = False

    @property
    def is_unknown(self) -> bool:
        return self.label == UNKNOWN_DEVICE


@dataclass
class _TypeModel:
    label: str
    classifier: RandomForestClassifier
    references: list[Fingerprint]
    _grouped_symbols: list[tuple[tuple[int, ...], int]] | None = field(
        default=None, repr=False, compare=False
    )

    def grouped_reference_symbols(self) -> list[tuple[tuple[int, ...], int]]:
        """Distinct reference symbol sequences with multiplicities.

        Repeated setup runs often yield identical fingerprints; the
        discrimination step computes each distinct sequence's distance once
        and weights it.  Sorted for a deterministic evaluation order;
        computed lazily and cached (references never change post-training).
        """
        if self._grouped_symbols is None:
            counts = Counter(ref.symbols() for ref in self.references)
            self._grouped_symbols = sorted(counts.items())
        return self._grouped_symbols


class DeviceIdentifier:
    """The IoTSSP's classifier bank plus discrimination step.

    Parameters
    ----------
    fp_length:
        Number of packet slots in ``F'`` (the paper's 12).
    negative_ratio:
        Negatives per positive when training each binary forest (paper: 10).
    n_references:
        Reference fingerprints per type for edit-distance discrimination
        (paper: 5).
    n_estimators:
        Trees per Random Forest.
    accept_threshold:
        Minimum positive-class probability for a classifier to "match".
        Slightly below the majority-vote 0.5 so that same-vendor sibling
        types (whose positive region overlaps heavily with the 10·n
        negative sample) still match each other's classifier and fall
        through to discrimination rather than being rejected outright —
        the behaviour the paper's Table III documents.
    random_state:
        Base entropy for training.  Each device type trains from its own
        generator derived from ``(random_state, label)``, so models are
        byte-identical regardless of ``n_jobs``, training order, or
        whether a type arrived via :meth:`fit` or :meth:`add_type` — and
        inference never consumes randomness at all.
    compiled:
        When true (the default), stage 1 evaluates batches through a
        lazily built :class:`~repro.ml.compiled.CompiledBank` — one flat
        node table for the whole classifier bank, traversed with
        vectorized gathers.  The compiled path is byte-identical to the
        interpreted per-forest loop (``tests/ml/test_compiled_differential.py``
        pins this), so flipping the flag never changes a result, only
        throughput.  The bank is rebuilt automatically after
        :meth:`fit`/:meth:`add_type`/:meth:`remove_type`.
    """

    #: Score slack within which two candidates count as tied.
    TIE_TOLERANCE = 1e-12

    def __init__(
        self,
        *,
        fp_length: int = DEFAULT_FP_PACKETS,
        negative_ratio: int = 10,
        n_references: int = 5,
        n_estimators: int = 20,
        max_depth: int | None = None,
        accept_threshold: float = 0.4,
        random_state: int | np.random.Generator | None = None,
        compiled: bool = True,
    ) -> None:
        self.fp_length = fp_length
        self.negative_ratio = negative_ratio
        self.n_references = n_references
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.accept_threshold = accept_threshold
        self.compiled = compiled
        self._entropy = derive_entropy(random_state)
        self._models: dict[str, _TypeModel] = {}
        self._bank: CompiledBank | None = None
        self._bank_source: tuple[str, ...] = ()

    # --- training ---------------------------------------------------------

    def fit(
        self, registry: DeviceTypeRegistry, *, n_jobs: int | None = None
    ) -> "DeviceIdentifier":
        """Train one classifier per type in the registry (from scratch).

        ``n_jobs`` sets the worker-pool width (None/1 serial, -1 all
        cores).  Each type trains from its own ``(seed, label)``-derived
        generator, so the resulting bank is byte-identical for any
        ``n_jobs`` value.
        """
        if len(registry) < 2:
            raise ValueError("need at least two device types to train")
        with obs_span(obs_names.SPAN_TRAIN_FIT, types=len(registry), n_jobs=n_jobs):
            models = parallel_map(
                lambda label: self._train_type(registry, label),
                registry.labels,
                n_jobs=n_jobs,
            )
        self._models = {model.label: model for model in models}
        self.invalidate_compiled()
        return self

    def add_type(self, registry: DeviceTypeRegistry, label: str) -> None:
        """Train (or retrain) a single type without touching the others.

        Produces the exact model :meth:`fit` would have produced for this
        label given the same registry contents and seed.
        """
        model = self._train_type(registry, label)
        self._models[label] = model
        self.invalidate_compiled()

    def remove_type(self, label: str) -> None:
        if label not in self._models:
            raise KeyError(label)
        del self._models[label]
        self.invalidate_compiled()

    def invalidate_compiled(self) -> None:
        """Drop the compiled bank; it is rebuilt lazily on the next batch.

        Called automatically by every mutator; callers that assign
        ``_models`` directly (persistence) must call it themselves.
        """
        self._bank = None
        self._bank_source = ()

    def _compiled_bank(self) -> CompiledBank:
        labels = tuple(sorted(self._models))
        if self._bank is None or self._bank_source != labels:
            self._bank = CompiledBank(
                [(label, self._models[label].classifier) for label in labels]
            )
            self._bank_source = labels
        return self._bank

    def _train_type(self, registry: DeviceTypeRegistry, label: str) -> _TypeModel:
        with obs_span(obs_names.SPAN_TRAIN_TYPE, label=label):
            rng = label_rng(self._entropy, label)
            positives = registry.positives_matrix(label, self.fp_length)
            negatives = registry.negatives_matrix(label, self.fp_length)
            x, y = build_binary_training_set(
                positives, negatives, ratio=self.negative_ratio, rng=rng
            )
            classifier = RandomForestClassifier(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                random_state=rng,
            ).fit(x, y)
            pool = registry.fingerprints(label)
            take = min(self.n_references, len(pool))
            chosen = rng.choice(len(pool), size=take, replace=False)
            obs_counter(obs_names.METRIC_TYPES_TRAINED).inc()
            return _TypeModel(
                label=label,
                classifier=classifier,
                references=[pool[int(i)] for i in chosen],
            )

    @property
    def labels(self) -> list[str]:
        return sorted(self._models)

    # --- inference --------------------------------------------------------

    def classify(self, fingerprint: Fingerprint) -> list[str]:
        """Stage 1: labels whose binary classifier accepts ``F'``."""
        return self.classify_batch([fingerprint])[0]

    def classify_batch(self, fingerprints: list[Fingerprint]) -> list[list[str]]:
        """Stage 1 over many fingerprints with one pass per classifier.

        Each forest sees the whole stacked F' matrix once, which is far
        cheaper than per-fingerprint calls when evaluating corpora.
        """
        if not self._models:
            raise RuntimeError("identifier is not trained")
        if not fingerprints:
            return []
        with obs_span(obs_names.SPAN_CLASSIFY, batch=len(fingerprints)):
            stacked = np.vstack([fp.fixed(self.fp_length) for fp in fingerprints])
            candidates: list[list[str]] = [[] for _ in fingerprints]
            if self.compiled:
                bank = self._compiled_bank()
                with obs_span(
                    obs_names.SPAN_CLASSIFY_BANK,
                    batch=len(fingerprints),
                    types=bank.n_forests,
                ):
                    positive = bank.positive_proba(stacked)
                # Same label order as the interpreted loop below, and the
                # probabilities are byte-identical, so the candidate lists
                # cannot differ between the two paths.
                for j, label in enumerate(bank.labels):
                    for row in np.flatnonzero(positive[:, j] >= self.accept_threshold):
                        candidates[int(row)].append(label)
                return candidates
            for label, model in sorted(self._models.items()):
                with obs_span(obs_names.SPAN_CLASSIFY_MODEL, label=label):
                    proba = model.classifier.predict_proba(stacked)
                classes = list(model.classifier.classes_)
                if True not in classes:
                    continue
                positive = proba[:, classes.index(True)]
                for row in np.flatnonzero(positive >= self.accept_threshold):
                    candidates[int(row)].append(label)
        return candidates

    def discriminate(self, fingerprint: Fingerprint, candidates: list[str]) -> tuple[str, dict]:
        """Stage 2: edit-distance dissimilarity over full ``F``; lowest wins.

        Candidates are evaluated in sorted order with a best-score cutoff
        threaded into the edit distance: once a candidate's running sum
        provably cannot beat the current best, its remaining references are
        skipped.  Scores within :data:`TIE_TOLERANCE` of the winner are
        always exact (the returned ``scores`` dict preserves the tie list);
        a hopeless candidate's entry may be a partial lower bound, which is
        still strictly above the winning score.  Ties break to the
        lexicographically smallest label — identification is deterministic
        and independent of batch order or prior calls.
        """
        if not candidates:
            raise ValueError("no candidates to discriminate")
        with obs_span(obs_names.SPAN_DISCRIMINATE, candidates=len(candidates)):
            obs_counter(obs_names.METRIC_DISCRIMINATIONS).inc()
            symbols = fingerprint.symbols()
            scores: dict[str, float] = {}
            best = float("inf")
            for label in sorted(candidates):
                groups = self._models[label].grouped_reference_symbols()
                bound = None if best == float("inf") else best + self.TIE_TOLERANCE
                score = dissimilarity_score_grouped(symbols, groups, bound=bound)
                scores[label] = score
                if score < best:
                    best = score
            tied = sorted(
                label
                for label, score in scores.items()
                if score <= best + self.TIE_TOLERANCE
            )
            return tied[0], scores

    def _resolve(self, fingerprint: Fingerprint, candidates: list[str]) -> IdentificationResult:
        if not candidates:
            obs_counter(obs_names.METRIC_IDENTIFICATIONS, outcome="unknown").inc()
            return IdentificationResult(label=UNKNOWN_DEVICE)
        obs_counter(obs_names.METRIC_IDENTIFICATIONS, outcome="known").inc()
        if len(candidates) == 1:
            return IdentificationResult(label=candidates[0], candidates=tuple(candidates))
        winner, scores = self.discriminate(fingerprint, candidates)
        return IdentificationResult(
            label=winner,
            candidates=tuple(candidates),
            scores=scores,
            used_discrimination=True,
        )

    def identify(self, fingerprint: Fingerprint) -> IdentificationResult:
        """Run the full two-stage pipeline on one fingerprint."""
        with obs_span(obs_names.SPAN_IDENTIFY) as span:
            result = self._resolve(fingerprint, self.classify(fingerprint))
            span.set(
                label=result.label,
                candidates=len(result.candidates),
                discriminated=result.used_discrimination,
            )
            return result

    def identify_batch(self, fingerprints: list[Fingerprint]) -> list[IdentificationResult]:
        """The full pipeline over many fingerprints (batched stage 1)."""
        return [
            self._resolve(fp, candidates)
            for fp, candidates in zip(fingerprints, self.classify_batch(fingerprints))
        ]
