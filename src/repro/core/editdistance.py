"""Damerau–Levenshtein edit distance over packet-symbol sequences.

The discrimination step (Sect. IV-B.2) treats the fingerprint matrix ``F``
as a word whose characters are packet columns; two characters are equal iff
*all 23 features* match.  The distance counts insertions, deletions,
substitutions and *immediate transpositions* (the restricted /
optimal-string-alignment variant of Damerau [24]) and is normalized by the
longer sequence's length to land in [0, 1].
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Hashable

__all__ = [
    "damerau_levenshtein",
    "damerau_levenshtein_unrestricted",
    "normalized_distance",
    "dissimilarity_score",
]


def damerau_levenshtein(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Restricted Damerau–Levenshtein (OSA) distance between two sequences."""
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    previous2 = [0] * (m + 1)
    previous = list(range(m + 1))
    for i in range(1, n + 1):
        current = [i] + [0] * m
        ai = a[i - 1]
        for j in range(1, m + 1):
            cost = 0 if ai == b[j - 1] else 1
            value = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution
            )
            if i > 1 and j > 1 and ai == b[j - 2] and a[i - 2] == b[j - 1]:
                value = min(value, previous2[j - 2] + 1)  # transposition
            current[j] = value
        previous2, previous = previous, current
    return previous[m]


def damerau_levenshtein_unrestricted(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """True Damerau–Levenshtein distance (transposed symbols may be edited).

    Unlike the restricted/OSA variant, a transposed pair may take part in
    further edits — e.g. ``ca -> abc`` costs 2 here (transpose ``ca`` →
    ``ac``, insert ``b``) but 3 under OSA.  Costs O(n·m) time and keeps a
    last-seen-row index per symbol (the Lowrance–Wagner algorithm).

    Exposed for the distance-variant ablation; the pipeline defaults to
    the OSA variant, which is what fingerprint implementations typically
    ship and is ~2× faster per comparison.
    """
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    max_dist = n + m
    # d has a sentinel row/column at index 0 holding max_dist.
    d = [[0] * (m + 2) for _ in range(n + 2)]
    d[0][0] = max_dist
    for i in range(n + 1):
        d[i + 1][0] = max_dist
        d[i + 1][1] = i
    for j in range(m + 1):
        d[0][j + 1] = max_dist
        d[1][j + 1] = j
    last_row: dict[Hashable, int] = {}
    for i in range(1, n + 1):
        last_match_col = 0
        for j in range(1, m + 1):
            i_prime = last_row.get(b[j - 1], 0)
            j_prime = last_match_col
            if a[i - 1] == b[j - 1]:
                cost = 0
                last_match_col = j
            else:
                cost = 1
            d[i + 1][j + 1] = min(
                d[i][j] + cost,  # substitution / match
                d[i + 1][j] + 1,  # insertion
                d[i][j + 1] + 1,  # deletion
                d[i_prime][j_prime] + (i - i_prime - 1) + 1 + (j - j_prime - 1),
            )
        last_row[a[i - 1]] = i
    return d[n + 1][m + 1]


def normalized_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> float:
    """Edit distance divided by the longer length, bounded on [0, 1]."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return damerau_levenshtein(a, b) / longest


def dissimilarity_score(
    candidate: Sequence[Hashable],
    references: Sequence[Sequence[Hashable]],
) -> float:
    """Summed normalized distance of ``candidate`` to each reference.

    With the paper's five references per device type the score lies in
    [0, 5]; the lowest-scoring type wins the discrimination step.
    """
    return sum(normalized_distance(candidate, reference) for reference in references)
