"""Damerau–Levenshtein edit distance over packet-symbol sequences.

The discrimination step (Sect. IV-B.2) treats the fingerprint matrix ``F``
as a word whose characters are packet columns; two characters are equal iff
*all 23 features* match.  The distance counts insertions, deletions,
substitutions and *immediate transpositions* (the restricted /
optimal-string-alignment variant of Damerau [24]) and is normalized by the
longer sequence's length to land in [0, 1].
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Hashable

__all__ = [
    "damerau_levenshtein",
    "damerau_levenshtein_unrestricted",
    "normalized_distance",
    "dissimilarity_score",
    "dissimilarity_score_grouped",
]


def _osa_distance(a: Sequence[Hashable], b: Sequence[Hashable], cutoff: int | None) -> int:
    """OSA distance DP with optional early abandon at ``cutoff``.

    Returns the exact distance when it is < ``cutoff`` (or ``cutoff`` is
    None); otherwise returns ``cutoff`` as soon as the distance is provably
    at least that large.  The inner loop carries the left/diagonal cells in
    locals — it runs millions of times per identification batch.
    """
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    if cutoff is not None and abs(n - m) >= cutoff:
        return cutoff  # distance ≥ |n - m| ≥ cutoff: abandon before the DP
    previous2 = [0] * (m + 1)
    previous = list(range(m + 1))
    prev_min = 0
    a_prev: Hashable = None
    for i in range(1, n + 1):
        ai = a[i - 1]
        current = [0] * (m + 1)
        current[0] = left = row_min = i
        diag = i - 1  # previous[0]
        b_prev: Hashable = None
        for j in range(1, m + 1):
            bj = b[j - 1]
            above = previous[j]
            value = diag if ai == bj else diag + 1  # substitution / match
            insertion = left + 1
            if insertion < value:
                value = insertion
            deletion = above + 1
            if deletion < value:
                value = deletion
            if i > 1 and j > 1 and ai == b_prev and a_prev == bj:
                transposition = previous2[j - 2] + 1
                if transposition < value:
                    value = transposition
            current[j] = left = value
            diag = above
            if value < row_min:
                row_min = value
            b_prev = bj
        # Any alignment path visits at least one of two consecutive DP rows
        # (a transposition skips at most one) and cell values along a path
        # never decrease, so once both row minima reach the cutoff the final
        # distance cannot come in below it.
        if cutoff is not None and row_min >= cutoff and prev_min >= cutoff:
            return cutoff
        prev_min = row_min
        previous2 = previous
        previous = current
        a_prev = ai
    return previous[m]


def damerau_levenshtein(
    a: Sequence[Hashable], b: Sequence[Hashable], *, cutoff: int | None = None
) -> int:
    """Restricted Damerau–Levenshtein (OSA) distance between two sequences.

    With ``cutoff`` set, computation may stop early once the distance is
    provably ≥ ``cutoff``; the return value is then some integer in
    ``[cutoff, true distance]``.  Whenever the true distance is *below*
    ``cutoff`` the exact value is returned, so callers that only care
    about "is it closer than my current best?" get the exact answer in
    the cases that matter and a cheap certificate otherwise.

    Without ``cutoff`` the result is always exact, computed by iterative
    deepening (doubling an internal abandon threshold): similar sequences
    — the common case for a fingerprint against its own type's references
    — cost O(d·m) for true distance ``d`` instead of O(n·m).
    """
    if cutoff is not None:
        if cutoff < 1:
            raise ValueError("cutoff must be a positive integer")
        return _osa_distance(a, b, cutoff)
    n, m = len(a), len(b)
    longest = max(n, m)
    threshold = max(abs(n - m) + 1, 8)
    # Deepen while an abandoned pass would still be much cheaper than the
    # full DP; past a quarter of the longest length, just run it in full.
    while threshold * 4 < longest:
        distance = _osa_distance(a, b, threshold)
        if distance < threshold:
            return distance
        threshold *= 2
    return _osa_distance(a, b, None)


def damerau_levenshtein_unrestricted(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """True Damerau–Levenshtein distance (transposed symbols may be edited).

    Unlike the restricted/OSA variant, a transposed pair may take part in
    further edits — e.g. ``ca -> abc`` costs 2 here (transpose ``ca`` →
    ``ac``, insert ``b``) but 3 under OSA.  Costs O(n·m) time and keeps a
    last-seen-row index per symbol (the Lowrance–Wagner algorithm).

    Exposed for the distance-variant ablation; the pipeline defaults to
    the OSA variant, which is what fingerprint implementations typically
    ship and is ~2× faster per comparison.
    """
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    max_dist = n + m
    # d has a sentinel row/column at index 0 holding max_dist.
    d = [[0] * (m + 2) for _ in range(n + 2)]
    d[0][0] = max_dist
    for i in range(n + 1):
        d[i + 1][0] = max_dist
        d[i + 1][1] = i
    for j in range(m + 1):
        d[0][j + 1] = max_dist
        d[1][j + 1] = j
    last_row: dict[Hashable, int] = {}
    for i in range(1, n + 1):
        last_match_col = 0
        for j in range(1, m + 1):
            i_prime = last_row.get(b[j - 1], 0)
            j_prime = last_match_col
            if a[i - 1] == b[j - 1]:
                cost = 0
                last_match_col = j
            else:
                cost = 1
            d[i + 1][j + 1] = min(
                d[i][j] + cost,  # substitution / match
                d[i + 1][j] + 1,  # insertion
                d[i][j + 1] + 1,  # deletion
                d[i_prime][j_prime] + (i - i_prime - 1) + 1 + (j - j_prime - 1),
            )
        last_row[a[i - 1]] = i
    return d[n + 1][m + 1]


def normalized_distance(
    a: Sequence[Hashable], b: Sequence[Hashable], *, cutoff: float | None = None
) -> float:
    """Edit distance divided by the longer length, bounded on [0, 1].

    ``cutoff`` (a normalized bound) enables early abandon: the result is
    exact whenever the true normalized distance is ≤ ``cutoff``, and
    otherwise lies in ``(cutoff, true distance]``.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    if cutoff is None:
        return damerau_levenshtein(a, b) / longest
    # Smallest integer distance that would push the normalized value past
    # the bound; any true distance at or below cutoff·longest stays exact.
    int_cutoff = int(cutoff * longest) + 1
    return damerau_levenshtein(a, b, cutoff=int_cutoff) / longest


def dissimilarity_score(
    candidate: Sequence[Hashable],
    references: Sequence[Sequence[Hashable]],
    *,
    bound: float | None = None,
) -> float:
    """Summed normalized distance of ``candidate`` to each reference.

    With the paper's five references per device type the score lies in
    [0, 5]; the lowest-scoring type wins the discrimination step.

    ``bound`` short-circuits a losing candidate: once the running sum
    provably exceeds it, the remaining references are skipped and the
    partial sum (already > ``bound``) is returned.  Results with a true
    score ≤ ``bound`` are always exact, so the eventual winner and every
    tie within the bound are unaffected.
    """
    return dissimilarity_score_grouped(
        candidate, [(reference, 1) for reference in references], bound=bound
    )


def dissimilarity_score_grouped(
    candidate: Sequence[Hashable],
    groups: Sequence[tuple[Sequence[Hashable], int]],
    *,
    bound: float | None = None,
) -> float:
    """:func:`dissimilarity_score` over deduplicated ``(reference, count)`` groups.

    Reference fingerprints are repeated setup runs and frequently identical;
    grouping computes each distinct reference's distance once and weights it
    by multiplicity — the same sum, fewer DP runs.  ``bound`` semantics match
    :func:`dissimilarity_score`.
    """
    total = 0.0
    for reference, count in groups:
        if bound is None:
            total += count * normalized_distance(candidate, reference)
        else:
            remaining = (bound - total) / count
            term = normalized_distance(candidate, reference, cutoff=remaining)
            total += count * term
            if term > remaining:
                # The term (exact, or an abandoned-DP certificate strictly
                # above the cutoff) exceeds the remaining budget, so the true
                # score is provably > bound — but the rounded running sum can
                # land exactly on bound, so bump past it explicitly.
                return max(total, math.nextafter(bound, math.inf))
    return total
