"""Save/load fingerprint corpora and trained identifiers.

Everything round-trips through JSON so that a gateway operator can
version-control the IoTSSP's model artifacts, ship them between machines,
and reload them without retraining.  Format:

* fingerprint   — ``{"mac", "label", "packets": [[...23 floats...], ...]}``
* registry      — ``{"types": {label: [fingerprint, ...]}}``
* identifier    — hyper-parameters + per-type serialized forest +
  reference fingerprints for the discrimination stage.

Fleet-scale deployments additionally get a **binary model store**
(:class:`ModelStore`): trained identifiers serialize to ``.npz`` payloads
of the compiled flat node arrays (see :mod:`repro.ml.compiled`), keyed by
a content hash over the training registry, the hyper-parameters, and the
training entropy.  :func:`warm_start_identifier` consults the store before
training and skips retraining entirely on a hit — ``docs/scaling.md``
describes the format and its invalidation rules.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.ml.compiled import CompiledForest, compile_forest, forest_from_flat
from repro.ml.parallel import derive_entropy
from repro.ml.serialize import forest_from_dict, forest_to_dict
from repro.obs import counter as obs_counter
from repro.obs import names as obs_names

from .fingerprint import Fingerprint
from .identifier import DeviceIdentifier, _TypeModel
from .registry import DeviceTypeRegistry

__all__ = [
    "fingerprint_to_dict",
    "fingerprint_from_dict",
    "registry_to_dict",
    "registry_from_dict",
    "save_registry",
    "load_registry",
    "identifier_to_dict",
    "identifier_from_dict",
    "save_identifier",
    "load_identifier",
    "save_identifier_npz",
    "load_identifier_npz",
    "registry_content_key",
    "ModelStore",
    "warm_start_identifier",
]

_FORMAT_VERSION = 1

#: Version of the binary (npz) model-store payload layout.  Bumping it
#: invalidates every cached payload, which degrades to a retrain — never
#: to a mis-parse.
_STORE_VERSION = 1


def fingerprint_to_dict(fingerprint: Fingerprint) -> dict:
    return {
        "mac": fingerprint.device_mac,
        "label": fingerprint.label,
        "packets": [list(packet) for packet in fingerprint.packets],
    }


def fingerprint_from_dict(data: dict) -> Fingerprint:
    return Fingerprint(
        packets=tuple(tuple(float(x) for x in packet) for packet in data["packets"]),
        device_mac=data.get("mac", ""),
        label=data.get("label"),
    )


def registry_to_dict(registry: DeviceTypeRegistry) -> dict:
    return {
        "version": _FORMAT_VERSION,
        "types": {
            label: [fingerprint_to_dict(fp) for fp in registry.fingerprints(label)]
            for label in registry.labels
        },
    }


def registry_from_dict(data: dict) -> DeviceTypeRegistry:
    registry = DeviceTypeRegistry()
    for label, fingerprints in data["types"].items():
        registry.add_many(label, [fingerprint_from_dict(fp) for fp in fingerprints])
    return registry


def save_registry(registry: DeviceTypeRegistry, path: str | Path) -> None:
    Path(path).write_text(json.dumps(registry_to_dict(registry)))


def load_registry(path: str | Path) -> DeviceTypeRegistry:
    return registry_from_dict(json.loads(Path(path).read_text()))


def identifier_to_dict(identifier: DeviceIdentifier) -> dict:
    if not identifier._models:
        raise ValueError("cannot serialize an untrained identifier")
    return {
        "version": _FORMAT_VERSION,
        "params": {
            "fp_length": identifier.fp_length,
            "negative_ratio": identifier.negative_ratio,
            "n_references": identifier.n_references,
            "n_estimators": identifier.n_estimators,
            "accept_threshold": identifier.accept_threshold,
        },
        "models": {
            label: {
                "forest": forest_to_dict(model.classifier),
                "references": [fingerprint_to_dict(fp) for fp in model.references],
            }
            for label, model in identifier._models.items()
        },
    }


def identifier_from_dict(data: dict) -> DeviceIdentifier:
    params = data["params"]
    identifier = DeviceIdentifier(
        fp_length=int(params["fp_length"]),
        negative_ratio=int(params["negative_ratio"]),
        n_references=int(params["n_references"]),
        n_estimators=int(params["n_estimators"]),
        accept_threshold=float(params["accept_threshold"]),
    )
    for label, model in data["models"].items():
        forest = forest_from_dict(model["forest"])
        # Serialized boolean class labels come back as Python bools; the
        # accept path expects True to be locatable in classes_.
        forest.classes_ = np.asarray([bool(c) for c in forest.classes_])
        for tree in forest.trees_:
            tree.classes_ = np.asarray([bool(c) for c in tree.classes_])
        identifier._models[label] = _TypeModel(
            label=label,
            classifier=forest,
            references=[fingerprint_from_dict(fp) for fp in model["references"]],
        )
    identifier.invalidate_compiled()
    return identifier


def save_identifier(identifier: DeviceIdentifier, path: str | Path) -> None:
    Path(path).write_text(json.dumps(identifier_to_dict(identifier)))


def load_identifier(path: str | Path) -> DeviceIdentifier:
    return identifier_from_dict(json.loads(Path(path).read_text()))


# --- binary (npz) payloads and the content-hash model store -----------------


def _identifier_params(identifier: DeviceIdentifier) -> dict:
    return {
        "fp_length": identifier.fp_length,
        "negative_ratio": identifier.negative_ratio,
        "n_references": identifier.n_references,
        "n_estimators": identifier.n_estimators,
        "max_depth": identifier.max_depth,
        "accept_threshold": identifier.accept_threshold,
    }


def save_identifier_npz(
    identifier: DeviceIdentifier, path: str | Path, *, key: str = ""
) -> None:
    """Serialize a trained identifier as compiled flat arrays in one npz.

    Every per-type forest is flattened by :func:`~repro.ml.compiled.compile_forest`
    (node tables + leaf probabilities in forest class order); reference
    fingerprints ride along as packed float64 matrices.  ``key`` (the
    content hash, when saved through :class:`ModelStore`) is embedded so a
    reader can detect a payload that no longer matches its filename.
    """
    if not identifier._models:
        raise ValueError("cannot serialize an untrained identifier")
    labels = sorted(identifier._models)
    arrays: dict[str, np.ndarray] = {}
    models_meta = []
    for i, label in enumerate(labels):
        model = identifier._models[label]
        compiled = compile_forest(model.classifier)
        prefix = f"m{i}_"
        arrays[prefix + "feature"] = compiled.feature
        arrays[prefix + "threshold"] = compiled.threshold
        arrays[prefix + "left"] = compiled.left
        arrays[prefix + "right"] = compiled.right
        arrays[prefix + "proba"] = compiled.proba
        arrays[prefix + "roots"] = compiled.tree_roots
        arrays[prefix + "classes"] = np.asarray(compiled.classes_)
        rows = [row for fp in model.references for row in fp.packets]
        arrays[prefix + "refs"] = np.asarray(rows, dtype=np.float64)
        arrays[prefix + "ref_lens"] = np.asarray(
            [len(fp.packets) for fp in model.references], dtype=np.int64
        )
        models_meta.append(
            {
                "label": label,
                "max_depth": compiled.max_depth,
                "ref_macs": [fp.device_mac for fp in model.references],
                "ref_labels": [fp.label for fp in model.references],
            }
        )
    meta = {
        "store_version": _STORE_VERSION,
        "key": key,
        "entropy": identifier._entropy,
        "params": _identifier_params(identifier),
        "models": models_meta,
    }
    arrays["meta"] = np.asarray(json.dumps(meta))
    np.savez_compressed(Path(path), **arrays)


def load_identifier_npz(
    path: str | Path, *, expected_key: str | None = None
) -> DeviceIdentifier:
    """Rebuild an identifier from :func:`save_identifier_npz` output.

    Raises ``ValueError`` on a version mismatch or (when ``expected_key``
    is given) a stale embedded content hash; the model store turns both
    into cache misses.
    """
    with np.load(Path(path), allow_pickle=False) as payload:
        meta = json.loads(str(payload["meta"][()]))
        if meta.get("store_version") != _STORE_VERSION:
            raise ValueError(f"unsupported model-store version {meta.get('store_version')}")
        if expected_key is not None and meta.get("key") != expected_key:
            raise ValueError("stale model payload: embedded content hash mismatch")
        params = meta["params"]
        max_depth = params["max_depth"]
        identifier = DeviceIdentifier(
            fp_length=int(params["fp_length"]),
            negative_ratio=int(params["negative_ratio"]),
            n_references=int(params["n_references"]),
            n_estimators=int(params["n_estimators"]),
            max_depth=None if max_depth is None else int(max_depth),
            accept_threshold=float(params["accept_threshold"]),
            random_state=int(meta["entropy"]),
        )
        for i, model_meta in enumerate(meta["models"]):
            prefix = f"m{i}_"
            classes = np.asarray([bool(c) for c in payload[prefix + "classes"]])
            compiled = CompiledForest(
                feature=payload[prefix + "feature"],
                threshold=payload[prefix + "threshold"],
                left=payload[prefix + "left"],
                right=payload[prefix + "right"],
                proba=payload[prefix + "proba"],
                tree_roots=payload[prefix + "roots"],
                classes_=classes,
                max_depth=int(model_meta["max_depth"]),
            )
            forest = forest_from_flat(
                compiled,
                n_estimators=identifier.n_estimators,
                max_depth=identifier.max_depth,
            )
            references = []
            offset = 0
            rows = payload[prefix + "refs"]
            for length, mac, ref_label in zip(
                payload[prefix + "ref_lens"],
                model_meta["ref_macs"],
                model_meta["ref_labels"],
            ):
                packets = tuple(
                    tuple(float(x) for x in row)
                    for row in rows[offset : offset + int(length)]
                )
                offset += int(length)
                references.append(
                    Fingerprint(packets=packets, device_mac=mac, label=ref_label)
                )
            identifier._models[model_meta["label"]] = _TypeModel(
                label=model_meta["label"],
                classifier=forest,
                references=references,
            )
    identifier.invalidate_compiled()
    return identifier


def registry_content_key(
    registry: DeviceTypeRegistry,
    *,
    entropy: int,
    fp_length: int,
    negative_ratio: int,
    n_references: int,
    n_estimators: int,
    max_depth: int | None,
    accept_threshold: float,
) -> str:
    """Content hash identifying one (training data, hyper-params, seed) triple.

    Any change to the registry's labels, fingerprint bytes, the training
    hyper-parameters, or the derived entropy produces a different key, so
    a cached model can never be served for training inputs it was not
    built from.
    """
    digest = hashlib.sha256()
    header = {
        "store_version": _STORE_VERSION,
        "entropy": entropy,
        "fp_length": fp_length,
        "negative_ratio": negative_ratio,
        "n_references": n_references,
        "n_estimators": n_estimators,
        "max_depth": max_depth,
        "accept_threshold": accept_threshold,
    }
    digest.update(json.dumps(header, sort_keys=True).encode())
    for label in registry.labels:
        digest.update(b"\x00L")
        digest.update(label.encode())
        for fp in registry.fingerprints(label):
            digest.update(b"\x00F")
            digest.update(fp.device_mac.encode())
            packets = np.asarray(fp.packets, dtype=np.float64)
            digest.update(str(packets.shape).encode())
            digest.update(packets.tobytes())
    return digest.hexdigest()


class ModelStore:
    """A directory of content-hash-keyed npz model payloads.

    ``{key}.npz`` under ``root``; a lookup is a **hit** only when the file
    exists, parses, carries the current payload version, *and* embeds the
    same key it is named after — anything else (absent, corrupt, stale,
    version-skewed) is a **miss**, counted separately, and warm-start
    falls back to retraining.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def save(self, identifier: DeviceIdentifier, key: str) -> Path:
        path = self.path_for(key)
        save_identifier_npz(identifier, path, key=key)
        return path

    def load(self, key: str) -> DeviceIdentifier | None:
        path = self.path_for(key)
        if not path.is_file():
            obs_counter(obs_names.METRIC_MODEL_STORE_MISSES).inc()
            return None
        try:
            identifier = load_identifier_npz(path, expected_key=key)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            obs_counter(obs_names.METRIC_MODEL_STORE_MISSES).inc()
            return None
        obs_counter(obs_names.METRIC_MODEL_STORE_HITS).inc()
        return identifier


def warm_start_identifier(
    registry: DeviceTypeRegistry,
    store: ModelStore,
    *,
    random_state: int | np.random.Generator | None = None,
    n_jobs: int | None = None,
    **hyper_params: object,
) -> tuple[DeviceIdentifier, bool]:
    """Train-or-load an identifier through the model store.

    Returns ``(identifier, cache_hit)``.  The content key covers the
    registry, the hyper-parameters, and the entropy derived from
    ``random_state``, so a hit is guaranteed to be the byte-identical
    model a fresh ``fit`` would have produced (PR 1's determinism
    invariant makes training a pure function of exactly those inputs).
    """
    entropy = derive_entropy(random_state)
    identifier = DeviceIdentifier(random_state=entropy, **hyper_params)
    key = registry_content_key(registry, entropy=entropy, **_identifier_params(identifier))
    cached = store.load(key)
    if cached is not None:
        return cached, True
    identifier.fit(registry, n_jobs=n_jobs)
    store.save(identifier, key)
    return identifier, False

