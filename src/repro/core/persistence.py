"""Save/load fingerprint corpora and trained identifiers.

Everything round-trips through JSON so that a gateway operator can
version-control the IoTSSP's model artifacts, ship them between machines,
and reload them without retraining.  Format:

* fingerprint   — ``{"mac", "label", "packets": [[...23 floats...], ...]}``
* registry      — ``{"types": {label: [fingerprint, ...]}}``
* identifier    — hyper-parameters + per-type serialized forest +
  reference fingerprints for the discrimination stage.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ml.serialize import forest_from_dict, forest_to_dict

from .fingerprint import Fingerprint
from .identifier import DeviceIdentifier, _TypeModel
from .registry import DeviceTypeRegistry

__all__ = [
    "fingerprint_to_dict",
    "fingerprint_from_dict",
    "registry_to_dict",
    "registry_from_dict",
    "save_registry",
    "load_registry",
    "identifier_to_dict",
    "identifier_from_dict",
    "save_identifier",
    "load_identifier",
]

_FORMAT_VERSION = 1


def fingerprint_to_dict(fingerprint: Fingerprint) -> dict:
    return {
        "mac": fingerprint.device_mac,
        "label": fingerprint.label,
        "packets": [list(packet) for packet in fingerprint.packets],
    }


def fingerprint_from_dict(data: dict) -> Fingerprint:
    return Fingerprint(
        packets=tuple(tuple(float(x) for x in packet) for packet in data["packets"]),
        device_mac=data.get("mac", ""),
        label=data.get("label"),
    )


def registry_to_dict(registry: DeviceTypeRegistry) -> dict:
    return {
        "version": _FORMAT_VERSION,
        "types": {
            label: [fingerprint_to_dict(fp) for fp in registry.fingerprints(label)]
            for label in registry.labels
        },
    }


def registry_from_dict(data: dict) -> DeviceTypeRegistry:
    registry = DeviceTypeRegistry()
    for label, fingerprints in data["types"].items():
        registry.add_many(label, [fingerprint_from_dict(fp) for fp in fingerprints])
    return registry


def save_registry(registry: DeviceTypeRegistry, path: str | Path) -> None:
    Path(path).write_text(json.dumps(registry_to_dict(registry)))


def load_registry(path: str | Path) -> DeviceTypeRegistry:
    return registry_from_dict(json.loads(Path(path).read_text()))


def identifier_to_dict(identifier: DeviceIdentifier) -> dict:
    if not identifier._models:
        raise ValueError("cannot serialize an untrained identifier")
    return {
        "version": _FORMAT_VERSION,
        "params": {
            "fp_length": identifier.fp_length,
            "negative_ratio": identifier.negative_ratio,
            "n_references": identifier.n_references,
            "n_estimators": identifier.n_estimators,
            "accept_threshold": identifier.accept_threshold,
        },
        "models": {
            label: {
                "forest": forest_to_dict(model.classifier),
                "references": [fingerprint_to_dict(fp) for fp in model.references],
            }
            for label, model in identifier._models.items()
        },
    }


def identifier_from_dict(data: dict) -> DeviceIdentifier:
    params = data["params"]
    identifier = DeviceIdentifier(
        fp_length=int(params["fp_length"]),
        negative_ratio=int(params["negative_ratio"]),
        n_references=int(params["n_references"]),
        n_estimators=int(params["n_estimators"]),
        accept_threshold=float(params["accept_threshold"]),
    )
    for label, model in data["models"].items():
        forest = forest_from_dict(model["forest"])
        # Serialized boolean class labels come back as Python bools; the
        # accept path expects True to be locatable in classes_.
        forest.classes_ = np.asarray([bool(c) for c in forest.classes_])
        for tree in forest.trees_:
            tree.classes_ = np.asarray([bool(c) for c in tree.classes_])
        identifier._models[label] = _TypeModel(
            label=label,
            classifier=forest,
            references=[fingerprint_from_dict(fp) for fp in model["references"]],
        )
    return identifier


def save_identifier(identifier: DeviceIdentifier, path: str | Path) -> None:
    Path(path).write_text(json.dumps(identifier_to_dict(identifier)))


def load_identifier(path: str | Path) -> DeviceIdentifier:
    return identifier_from_dict(json.loads(Path(path).read_text()))
