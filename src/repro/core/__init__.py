"""Fingerprinting and device-type identification — the paper's core.

Public surface:

* :data:`FEATURE_NAMES` / :func:`packet_features` — the 23 features of Table I
* :class:`Fingerprint` — the F / F' representations of Sect. IV-A
* :class:`FingerprintExtractor` / :class:`SetupPhaseDetector` — traffic → F
* :class:`DeviceIdentifier` — the two-stage pipeline of Sect. IV-B
* :class:`DeviceTypeRegistry` — the IoTSSP training corpus
"""

from .analysis import (
    FeatureImportanceReport,
    classifier_feature_importance,
    fingerprint_summary,
)
from .editdistance import (
    damerau_levenshtein,
    damerau_levenshtein_unrestricted,
    dissimilarity_score,
    normalized_distance,
)
from .extractor import (
    FingerprintExtractor,
    RateDropDetector,
    SetupPhaseDetector,
    fingerprint_from_records,
    fingerprint_from_records_batch,
)
from .persistence import (
    ModelStore,
    load_identifier,
    load_identifier_npz,
    load_registry,
    registry_content_key,
    save_identifier,
    save_identifier_npz,
    save_registry,
    warm_start_identifier,
)
from .features import (
    FEATURE_NAMES,
    INTEGER_FEATURES,
    NUM_FEATURES,
    DestinationCounter,
    batch_features,
    packet_features,
    port_class,
    port_class_array,
)
from .constants import FIXED_VECTOR_DIM
from .fingerprint import (
    DEFAULT_FP_PACKETS,
    Fingerprint,
    dedupe_consecutive,
    fixed_vector,
    intern_symbol,
)
from .identifier import UNKNOWN_DEVICE, DeviceIdentifier, IdentificationResult
from .registry import DeviceTypeRegistry

# Deterministic seeding/parallelism helpers live in repro.ml.parallel (the
# layer below); they are re-exported here because the identifier's
# determinism contract is part of the core public surface.
from repro.ml.parallel import (
    derive_entropy,
    label_rng,
    label_seed_sequence,
    parallel_map,
    resolve_n_jobs,
    spawn_generators,
)

__all__ = [
    "DEFAULT_FP_PACKETS",
    "FIXED_VECTOR_DIM",
    "FeatureImportanceReport",
    "classifier_feature_importance",
    "fingerprint_summary",
    "ModelStore",
    "load_identifier",
    "load_identifier_npz",
    "load_registry",
    "registry_content_key",
    "save_identifier",
    "save_identifier_npz",
    "save_registry",
    "warm_start_identifier",
    "FEATURE_NAMES",
    "INTEGER_FEATURES",
    "NUM_FEATURES",
    "UNKNOWN_DEVICE",
    "DestinationCounter",
    "DeviceIdentifier",
    "DeviceTypeRegistry",
    "Fingerprint",
    "FingerprintExtractor",
    "IdentificationResult",
    "RateDropDetector",
    "SetupPhaseDetector",
    "batch_features",
    "damerau_levenshtein",
    "damerau_levenshtein_unrestricted",
    "dedupe_consecutive",
    "derive_entropy",
    "dissimilarity_score",
    "fingerprint_from_records",
    "fingerprint_from_records_batch",
    "fixed_vector",
    "port_class_array",
    "intern_symbol",
    "label_rng",
    "label_seed_sequence",
    "normalized_distance",
    "packet_features",
    "parallel_map",
    "port_class",
    "resolve_n_jobs",
    "spawn_generators",
]
