"""Device fingerprints: the variable-length matrix ``F`` and fixed ``F'``.

``F`` keeps one column per packet (Eq. 1 of the paper) with *consecutive
duplicates removed*; ``F'`` concatenates the first
:data:`DEFAULT_FP_PACKETS` *unique* packet vectors into a flat
``12 × 23 = 276``-dimensional vector, zero-padded when fewer unique packets
exist.  We store ``F`` transposed (rows = packets) because that is the
natural numpy orientation; :attr:`Fingerprint.matrix` exposes the paper's
23×n layout for fidelity.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from .constants import DEFAULT_FP_PACKETS, FIXED_VECTOR_DIM
from .features import NUM_FEATURES

__all__ = [
    "DEFAULT_FP_PACKETS",
    "FIXED_VECTOR_DIM",
    "Fingerprint",
    "dedupe_consecutive",
    "fixed_vector",
    "intern_symbol",
]


def dedupe_consecutive(vectors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Drop packets identical (feature-wise) to their predecessor.

    Implements "Consecutive identical packets from our feature set
    perspective (i.e. p_i = p_{i+1}) are discarded from F".
    """
    out: list[np.ndarray] = []
    for vector in vectors:
        if out and np.array_equal(out[-1], vector):
            continue
        out.append(np.asarray(vector, dtype=np.float64))
    return out


def fixed_vector(
    packet_vectors: Sequence[np.ndarray], length: int = DEFAULT_FP_PACKETS
) -> np.ndarray:
    """Build ``F'``: first ``length`` *unique* packet vectors, zero-padded."""
    if length < 1:
        raise ValueError("length must be positive")
    unique: list[np.ndarray] = []
    seen: set[tuple] = set()
    for vector in packet_vectors:
        key = tuple(np.asarray(vector).tolist())
        if key in seen:
            continue
        seen.add(key)
        unique.append(np.asarray(vector, dtype=np.float64))
        if len(unique) == length:
            break
    out = np.zeros(length * NUM_FEATURES, dtype=np.float64)
    for i, vector in enumerate(unique):
        out[i * NUM_FEATURES : (i + 1) * NUM_FEATURES] = vector
    return out


# Process-wide intern table mapping packet feature tuples to small integer
# ids.  Edit-distance discrimination compares packet "characters" millions
# of times per batch; comparing interned ints instead of 23-float tuples
# keeps equality O(1) and cache-friendly.  The table is append-only and
# bounded by the number of *distinct* packet vectors ever fingerprinted
# (small in practice: feature vectors are heavily quantized).
_SYMBOL_IDS: dict[tuple[float, ...], int] = {}
_SYMBOL_LOCK = threading.Lock()


def intern_symbol(packet: tuple[float, ...]) -> int:
    """Stable integer id for a packet feature tuple (equal iff all 23 match)."""
    sid = _SYMBOL_IDS.get(packet)
    if sid is None:
        with _SYMBOL_LOCK:
            sid = _SYMBOL_IDS.get(packet)
            if sid is None:
                sid = _SYMBOL_IDS[packet] = len(_SYMBOL_IDS)
    return sid


@dataclass(frozen=True)
class Fingerprint:
    """One device fingerprint: packet-feature rows plus metadata."""

    packets: tuple[tuple[float, ...], ...]
    device_mac: str = ""
    label: str | None = None
    #: Per-instance memo for derived views (F' per length, interned symbols).
    #: Excluded from equality/hash/repr; safe to fill lazily on the frozen
    #: dataclass because every entry is a pure function of ``packets``.
    _cache: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    @classmethod
    def from_vectors(
        cls,
        vectors: Iterable[np.ndarray],
        *,
        device_mac: str = "",
        label: str | None = None,
    ) -> "Fingerprint":
        """Construct from raw per-packet feature vectors (applies dedup).

        Shape validation happens *before* consecutive-duplicate removal so a
        malformed vector is always rejected, even when it would have been
        dropped as a duplicate of its predecessor.
        """
        arrays = [np.asarray(v, dtype=np.float64) for v in vectors]
        for vector in arrays:
            if vector.shape != (NUM_FEATURES,):
                raise ValueError(f"feature vector must have {NUM_FEATURES} entries")
        deduped = dedupe_consecutive(arrays)
        return cls(
            packets=tuple(tuple(float(x) for x in v) for v in deduped),
            device_mac=device_mac,
            label=label,
        )

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        *,
        device_mac: str = "",
        label: str | None = None,
    ) -> "Fingerprint":
        """Construct from an ``(n, NUM_FEATURES)`` feature matrix (applies dedup).

        The batch twin of :meth:`from_vectors` — consecutive-duplicate
        removal happens as one vectorized row comparison instead of a
        Python loop, producing a byte-identical fingerprint (note that a
        NaN entry makes a row compare unequal to itself under both
        ``np.array_equal`` and elementwise ``!=``, so even that edge
        agrees).
        """
        m = np.asarray(matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[1] != NUM_FEATURES:
            raise ValueError(f"feature matrix must have {NUM_FEATURES} columns")
        if m.shape[0]:
            keep = np.empty(m.shape[0], dtype=bool)
            keep[0] = True
            np.any(m[1:] != m[:-1], axis=1, out=keep[1:])
            m = m[keep]
        return cls(
            packets=tuple(tuple(row) for row in m.tolist()),
            device_mac=device_mac,
            label=label,
        )

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def matrix(self) -> np.ndarray:
        """The paper's 23×n matrix F (features as rows, packets as columns)."""
        if not self.packets:
            return np.zeros((NUM_FEATURES, 0))
        return np.asarray(self.packets, dtype=np.float64).T

    @property
    def rows(self) -> np.ndarray:
        """Packets-as-rows orientation (n×23) for numpy-friendly work."""
        if not self.packets:
            return np.zeros((0, NUM_FEATURES))
        return np.asarray(self.packets, dtype=np.float64)

    def fixed(self, length: int = DEFAULT_FP_PACKETS) -> np.ndarray:
        """The fixed-size vector F' (length × 23 entries).

        Memoized per ``length``: the classifier bank reads the same F'
        once per classifier pass, so it is computed once and returned as a
        read-only array thereafter (copy before mutating).
        """
        key = ("fixed", length)
        cached = self._cache.get(key)
        if cached is None:
            cached = fixed_vector(self.rows, length)
            cached.setflags(write=False)
            self._cache[key] = cached
        return cached

    def symbols(self) -> tuple[int, ...]:
        """Packets as interned integer symbols for edit-distance comparison.

        Two symbols are equal iff all 23 features match (the paper's
        character-equality rule); interning makes that an integer compare
        instead of a 23-tuple compare in the discrimination hot loop.
        Memoized per instance.
        """
        cached = self._cache.get("symbols")
        if cached is None:
            cached = tuple(intern_symbol(packet) for packet in self.packets)
            self._cache["symbols"] = cached
        return cached
