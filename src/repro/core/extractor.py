"""Packet stream → fingerprint extraction with setup-phase end detection.

The Security Gateway records packets *sent by* a newly-seen MAC during its
setup phase; "the end of the setup phase can be automatically identified by
a decrease in the rate of packets sent" (Sect. IV-A).  The detector here
declares the phase over when the inter-packet gap exceeds ``idle_gap``
seconds after at least ``min_packets`` packets, or when ``max_packets`` /
``max_duration`` caps are hit — the same observable the paper describes,
made explicit and testable.

Instrumented with ``repro.obs``: :func:`fingerprint_from_records` runs
inside the ``extract.fingerprint`` span (Table IV's "Fingerprint
extraction" row) — see ``docs/observability.md``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.obs import names as obs_names
from repro.obs import span as obs_span
from repro.packets.batch import PacketBatch
from repro.packets.decoder import DecodedPacket, decode
from repro.packets.pcap import CaptureRecord

from .features import DestinationCounter, batch_features, packet_features
from .fingerprint import Fingerprint

#: Chunks at or below this size run the scalar detector loop inside
#: :meth:`FingerprintExtractor.add_batch`; per-call numpy overhead beats
#: vectorization on the tiny per-device slices a fleet sweep produces.
_DETECTOR_VECTOR_MIN = 32

__all__ = [
    "SetupPhaseDetector",
    "RateDropDetector",
    "FingerprintExtractor",
    "fingerprint_from_records",
    "fingerprint_from_records_batch",
]


@dataclass
class SetupPhaseDetector:
    """Declares the end of a device's setup phase from packet timing."""

    idle_gap: float = 5.0
    min_packets: int = 4
    max_packets: int = 200
    max_duration: float = 300.0
    _first_ts: float | None = field(default=None, repr=False)
    _last_ts: float | None = field(default=None, repr=False)
    _count: int = field(default=0, repr=False)

    def observe(self, timestamp: float) -> bool:
        """Feed one packet timestamp; True once the setup phase has ended.

        The packet that triggers the end is *not* part of the setup phase.
        """
        if self._first_ts is None:
            self._first_ts = self._last_ts = timestamp
            self._count = 1
            return False
        if timestamp < self._last_ts:
            raise ValueError("timestamps must be non-decreasing")
        gap = timestamp - self._last_ts
        elapsed = timestamp - self._first_ts
        if self._count >= self.min_packets and gap > self.idle_gap:
            return True
        if self._count >= self.max_packets or elapsed > self.max_duration:
            return True
        self._last_ts = timestamp
        self._count += 1
        return False

    @property
    def last_timestamp(self) -> float | None:
        """Timestamp of the last accepted packet (None before the first)."""
        return self._last_ts

    def observe_batch(self, timestamps: np.ndarray) -> tuple[int, bool]:
        """Vectorized equivalent of repeated :meth:`observe` calls.

        Returns ``(accepted, fired)``: ``accepted`` packets were absorbed
        into the phase (their features belong in the fingerprint) and
        ``fired`` says whether the next packet ended it.  A backwards
        timestamp raises ValueError after the prefix before it has been
        absorbed — exactly where the scalar loop would raise, including
        the raise-beats-fire tie on the same packet.
        """
        ts = np.asarray(timestamps, dtype=np.float64)
        n = ts.shape[0]
        if n == 0:
            return 0, False
        start = 0
        if self._first_ts is None:
            self._first_ts = self._last_ts = float(ts[0])
            self._count = 1
            start = 1
        rest = ts[start:]
        m = rest.shape[0]
        if m == 0:
            return start, False
        prev = np.empty_like(rest)
        prev[0] = self._last_ts
        prev[1:] = rest[:-1]
        bad = np.flatnonzero(rest < prev)
        bad_idx = int(bad[0]) if bad.size else m
        gaps = rest - prev
        counts = self._count + np.arange(m)
        elapsed = rest - self._first_ts
        fire = (
            ((counts >= self.min_packets) & (gaps > self.idle_gap))
            | (counts >= self.max_packets)
            | (elapsed > self.max_duration)
        )
        fire_idx = int(np.argmax(fire)) if fire.any() else m
        accepted = min(bad_idx, fire_idx)
        if accepted:
            self._last_ts = float(rest[accepted - 1])
            self._count += accepted
        if bad_idx < m and bad_idx <= fire_idx:
            raise ValueError("timestamps must be non-decreasing")
        return start + accepted, fire_idx < m

    def reset(self) -> None:
        self._first_ts = self._last_ts = None
        self._count = 0


@dataclass
class RateDropDetector:
    """The paper's literal criterion: a *decrease in the rate* of packets.

    Tracks the packet rate over a sliding window; once the device has been
    transmitting for at least ``warmup`` packets, the phase ends when the
    current windowed rate falls below ``drop_fraction`` of the peak
    windowed rate.  More faithful to Sect. IV-A's wording than the
    idle-gap heuristic, at the cost of two tunables instead of one;
    both detectors are interchangeable via ``detector_factory``.
    """

    window: float = 10.0
    drop_fraction: float = 0.2
    warmup: int = 6
    max_packets: int = 200
    max_duration: float = 300.0
    _times: deque = field(default_factory=deque, repr=False)
    _first_ts: float | None = field(default=None, repr=False)
    _last_ts: float | None = field(default=None, repr=False)
    _count: int = field(default=0, repr=False)
    _peak_rate: float = field(default=0.0, repr=False)

    def observe(self, timestamp: float) -> bool:
        """Feed one packet timestamp; True once the setup phase has ended.

        The packet that triggers the end is *not* part of the setup phase:
        caps are tested before the packet is counted, mirroring
        :class:`SetupPhaseDetector`, and a triggering timestamp is never
        retained in the sliding window.
        """
        if self._first_ts is None:
            self._first_ts = self._last_ts = timestamp
            self._count = 1
            self._times.append(timestamp)
            return False
        if timestamp < self._last_ts:
            raise ValueError("timestamps must be non-decreasing")
        elapsed = timestamp - self._first_ts
        if self._count >= self.max_packets or elapsed > self.max_duration:
            return True
        # Prune timestamps that fell out of the sliding window: amortised
        # O(1) per packet, versus the old O(n) rescan of the full history.
        while self._times and timestamp - self._times[0] > self.window:
            self._times.popleft()
        # Rate over the *observed* span of the window, not the nominal
        # width: before the window fills, dividing by the full width
        # understates the rate (and hence the peak the drop is measured
        # against).  A lone packet has no span; fall back to the width.
        span = timestamp - self._times[0] if self._times else 0.0
        in_window = len(self._times) + 1
        denom = min(self.window, span) if span > 0 else self.window
        rate = in_window / denom
        if self._count + 1 >= self.warmup:
            if self._peak_rate > 0 and rate < self.drop_fraction * self._peak_rate:
                return True
        self._peak_rate = max(self._peak_rate, rate)
        self._times.append(timestamp)
        self._last_ts = timestamp
        self._count += 1
        return False

    @property
    def last_timestamp(self) -> float | None:
        """Timestamp of the last accepted packet (None before the first)."""
        return self._last_ts

    def reset(self) -> None:
        self._times.clear()
        self._first_ts = self._last_ts = None
        self._count = 0
        self._peak_rate = 0.0


class FingerprintExtractor:
    """Accumulates one device's setup packets into a fingerprint.

    Feed decoded packets via :meth:`add`; when :meth:`add` returns True the
    setup phase ended and :meth:`fingerprint` yields the final result.
    """

    def __init__(
        self,
        device_mac: str,
        *,
        detector: SetupPhaseDetector | None = None,
    ) -> None:
        self.device_mac = device_mac
        self.detector = detector or SetupPhaseDetector()
        self._counter = DestinationCounter()
        self._vectors: list[np.ndarray] = []
        self._complete = False

    @property
    def complete(self) -> bool:
        return self._complete

    @property
    def packet_count(self) -> int:
        return len(self._vectors)

    def add(self, timestamp: float, packet: DecodedPacket) -> bool:
        """Add one packet (must originate from the device). Returns done."""
        if self._complete:
            return True
        if packet.src_mac and packet.src_mac != self.device_mac:
            raise ValueError(
                f"packet from {packet.src_mac} fed to extractor for {self.device_mac}"
            )
        if self.detector.observe(timestamp):
            self._complete = True
            return True
        self._vectors.append(packet_features(packet, self._counter))
        return False

    def add_batch(
        self,
        timestamps: Sequence[float] | np.ndarray,
        batch: PacketBatch,
        rows: list[int] | np.ndarray | None = None,
    ) -> tuple[int, bool]:
        """Feed a chunk of this device's packets; returns ``(accepted, done)``.

        ``rows`` selects this device's rows of ``batch`` in arrival order
        (default: every row) with ``timestamps`` aligned entry-for-entry.
        Semantically identical to calling :meth:`add` per packet — the
        detector runs over the timestamps, the feature matrix is computed
        only for the accepted prefix (so the destination counter advances
        exactly as the scalar loop would), and a backwards timestamp
        raises ValueError after the clean prefix before it has been
        absorbed.
        """
        if rows is None:
            n = len(batch)
        else:
            if isinstance(rows, np.ndarray):
                rows = rows.tolist()
            n = len(rows)
        if len(timestamps) != n:
            raise ValueError("timestamps and batch disagree on length")
        if self._complete:
            return 0, True
        src = batch.src_macs
        for mac in src if rows is None else (src[i] for i in rows):
            if mac and mac != self.device_mac:
                raise ValueError(
                    f"packet from {mac} fed to extractor for {self.device_mac}"
                )
        if n == 0:
            return 0, False
        accepted, done, error = self._observe_chunk(timestamps, n)
        if accepted:
            sel = range(accepted) if rows is None else rows[:accepted]
            feats = batch_features(batch, self._counter, rows=sel)
            self._vectors.extend(feats)
        if done:
            self._complete = True
            return accepted, True
        if error is not None:
            raise error
        return accepted, False

    def _observe_chunk(
        self, timestamps: Sequence[float] | np.ndarray, n: int
    ) -> tuple[int, bool, ValueError | None]:
        """Run the detector over a chunk; returns ``(accepted, done, error)``.

        The error (a backwards-timestamp ValueError) is returned rather
        than raised so the caller can absorb the clean prefix's features
        first, exactly as the scalar loop would.  Small chunks take the
        scalar :meth:`~SetupPhaseDetector.observe` loop — fleet sweeps
        splinter into tiny per-device slices where per-call array overhead
        outweighs vectorization.
        """
        detector = self.detector
        if n <= _DETECTOR_VECTOR_MIN or not hasattr(detector, "observe_batch"):
            accepted = 0
            for t in timestamps:
                try:
                    fired = detector.observe(float(t))
                except ValueError as exc:
                    return accepted, False, exc
                if fired:
                    return accepted, True, None
                accepted += 1
            return accepted, False, None
        ts = np.asarray(timestamps, dtype=np.float64)
        # Pre-split on the first timestamp a scalar add() would reject so
        # the detector only ever sees a monotone prefix.
        last = detector.last_timestamp
        prev = np.empty_like(ts)
        prev[0] = ts[0] if last is None else last
        prev[1:] = ts[:-1]
        bad = np.flatnonzero(ts < prev)
        stop = int(bad[0]) if bad.size else n
        accepted, done = detector.observe_batch(ts[:stop])
        if done or stop == n:
            return accepted, done, None
        # Replay the offending timestamp through the detector so it raises
        # exactly as the scalar path does.
        try:
            detector.observe(float(ts[stop]))
        except ValueError as exc:
            return accepted, False, exc
        raise AssertionError("pre-split timestamp did not raise")  # pragma: no cover

    def finish(self) -> None:
        """Force completion (e.g. capture file exhausted)."""
        self._complete = True

    def fingerprint(self, label: str | None = None) -> Fingerprint:
        if not self._vectors:
            return Fingerprint.from_vectors(
                [], device_mac=self.device_mac, label=label
            )
        return Fingerprint.from_matrix(
            np.vstack(self._vectors), device_mac=self.device_mac, label=label
        )


def fingerprint_from_records(
    records: list[CaptureRecord],
    device_mac: str,
    *,
    label: str | None = None,
    detector: SetupPhaseDetector | None = None,
) -> Fingerprint:
    """Extract a fingerprint from pcap records, filtering by source MAC."""
    with obs_span(obs_names.SPAN_EXTRACT, records=len(records)) as span:
        extractor = FingerprintExtractor(device_mac, detector=detector)
        for record in records:
            packet = decode(record.data)
            if packet.src_mac != device_mac:
                continue
            if extractor.add(record.timestamp, packet):
                break
        extractor.finish()
        span.set(packets=extractor.packet_count)
        return extractor.fingerprint(label=label)


def fingerprint_from_records_batch(
    records: list[CaptureRecord],
    device_mac: str,
    *,
    label: str | None = None,
    detector: SetupPhaseDetector | None = None,
) -> Fingerprint:
    """Batch twin of :func:`fingerprint_from_records`: parse once, vectorize.

    Parses the whole capture into a columnar :class:`PacketBatch`, slices
    out the device's rows, and runs setup-phase detection plus feature
    extraction over arrays.  Byte-identical output to the scalar path —
    including error behaviour (DecodeError on a sub-Ethernet runt frame,
    ValueError on a backwards timestamp) — pinned by the differential
    harness in ``tests/core/test_batch_extraction.py``.  Runs inside the
    ``extract.batch`` span.
    """
    with obs_span(obs_names.SPAN_EXTRACT_BATCH, records=len(records)) as span:
        batch = PacketBatch.from_records(records)
        rows = [i for i, mac in enumerate(batch.src_macs) if mac == device_mac]
        extractor = FingerprintExtractor(device_mac, detector=detector)
        extractor.add_batch(batch.timestamps[rows], batch, rows=rows)
        extractor.finish()
        span.set(packets=extractor.packet_count)
        return extractor.fingerprint(label=label)
