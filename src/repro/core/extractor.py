"""Packet stream → fingerprint extraction with setup-phase end detection.

The Security Gateway records packets *sent by* a newly-seen MAC during its
setup phase; "the end of the setup phase can be automatically identified by
a decrease in the rate of packets sent" (Sect. IV-A).  The detector here
declares the phase over when the inter-packet gap exceeds ``idle_gap``
seconds after at least ``min_packets`` packets, or when ``max_packets`` /
``max_duration`` caps are hit — the same observable the paper describes,
made explicit and testable.

Instrumented with ``repro.obs``: :func:`fingerprint_from_records` runs
inside the ``extract.fingerprint`` span (Table IV's "Fingerprint
extraction" row) — see ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import names as obs_names
from repro.obs import span as obs_span
from repro.packets.decoder import DecodedPacket, decode
from repro.packets.pcap import CaptureRecord

from .features import DestinationCounter, packet_features
from .fingerprint import Fingerprint

__all__ = [
    "SetupPhaseDetector",
    "RateDropDetector",
    "FingerprintExtractor",
    "fingerprint_from_records",
]


@dataclass
class SetupPhaseDetector:
    """Declares the end of a device's setup phase from packet timing."""

    idle_gap: float = 5.0
    min_packets: int = 4
    max_packets: int = 200
    max_duration: float = 300.0
    _first_ts: float | None = field(default=None, repr=False)
    _last_ts: float | None = field(default=None, repr=False)
    _count: int = field(default=0, repr=False)

    def observe(self, timestamp: float) -> bool:
        """Feed one packet timestamp; True once the setup phase has ended.

        The packet that triggers the end is *not* part of the setup phase.
        """
        if self._first_ts is None:
            self._first_ts = self._last_ts = timestamp
            self._count = 1
            return False
        if timestamp < self._last_ts:
            raise ValueError("timestamps must be non-decreasing")
        gap = timestamp - self._last_ts
        elapsed = timestamp - self._first_ts
        if self._count >= self.min_packets and gap > self.idle_gap:
            return True
        if self._count >= self.max_packets or elapsed > self.max_duration:
            return True
        self._last_ts = timestamp
        self._count += 1
        return False

    def reset(self) -> None:
        self._first_ts = self._last_ts = None
        self._count = 0


@dataclass
class RateDropDetector:
    """The paper's literal criterion: a *decrease in the rate* of packets.

    Tracks the packet rate over a sliding window; once the device has been
    transmitting for at least ``warmup`` packets, the phase ends when the
    current windowed rate falls below ``drop_fraction`` of the peak
    windowed rate.  More faithful to Sect. IV-A's wording than the
    idle-gap heuristic, at the cost of two tunables instead of one;
    both detectors are interchangeable via ``detector_factory``.
    """

    window: float = 10.0
    drop_fraction: float = 0.2
    warmup: int = 6
    max_packets: int = 200
    max_duration: float = 300.0
    _times: list = field(default_factory=list, repr=False)
    _peak_rate: float = field(default=0.0, repr=False)

    def observe(self, timestamp: float) -> bool:
        """Feed one packet timestamp; True once the setup phase has ended."""
        if self._times and timestamp < self._times[-1]:
            raise ValueError("timestamps must be non-decreasing")
        self._times.append(timestamp)
        elapsed = timestamp - self._times[0]
        if len(self._times) >= self.max_packets or elapsed > self.max_duration:
            return True
        recent = [t for t in self._times if timestamp - t <= self.window]
        rate = len(recent) / self.window
        if len(self._times) >= self.warmup:
            if self._peak_rate > 0 and rate < self.drop_fraction * self._peak_rate:
                return True
        self._peak_rate = max(self._peak_rate, rate)
        return False

    def reset(self) -> None:
        self._times.clear()
        self._peak_rate = 0.0


class FingerprintExtractor:
    """Accumulates one device's setup packets into a fingerprint.

    Feed decoded packets via :meth:`add`; when :meth:`add` returns True the
    setup phase ended and :meth:`fingerprint` yields the final result.
    """

    def __init__(
        self,
        device_mac: str,
        *,
        detector: SetupPhaseDetector | None = None,
    ) -> None:
        self.device_mac = device_mac
        self.detector = detector or SetupPhaseDetector()
        self._counter = DestinationCounter()
        self._vectors: list[np.ndarray] = []
        self._complete = False

    @property
    def complete(self) -> bool:
        return self._complete

    @property
    def packet_count(self) -> int:
        return len(self._vectors)

    def add(self, timestamp: float, packet: DecodedPacket) -> bool:
        """Add one packet (must originate from the device). Returns done."""
        if self._complete:
            return True
        if packet.src_mac and packet.src_mac != self.device_mac:
            raise ValueError(
                f"packet from {packet.src_mac} fed to extractor for {self.device_mac}"
            )
        if self.detector.observe(timestamp):
            self._complete = True
            return True
        self._vectors.append(packet_features(packet, self._counter))
        return False

    def finish(self) -> None:
        """Force completion (e.g. capture file exhausted)."""
        self._complete = True

    def fingerprint(self, label: str | None = None) -> Fingerprint:
        return Fingerprint.from_vectors(
            self._vectors, device_mac=self.device_mac, label=label
        )


def fingerprint_from_records(
    records: list[CaptureRecord],
    device_mac: str,
    *,
    label: str | None = None,
    detector: SetupPhaseDetector | None = None,
) -> Fingerprint:
    """Extract a fingerprint from pcap records, filtering by source MAC."""
    with obs_span(obs_names.SPAN_EXTRACT, records=len(records)) as span:
        extractor = FingerprintExtractor(device_mac, detector=detector)
        for record in records:
            packet = decode(record.data)
            if packet.src_mac != device_mac:
                continue
            if extractor.add(record.timestamp, packet):
                break
        extractor.finish()
        span.set(packets=extractor.packet_count)
        return extractor.fingerprint(label=label)
