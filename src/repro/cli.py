"""Command-line interface: the IoT Sentinel toolchain as a CLI.

Subcommands mirror the operational workflow:

* ``devices``  — list the catalogue of simulated device types
* ``simulate`` — run one device setup and write the capture to a pcap
* ``dataset``  — build a labelled fingerprint corpus (JSON)
* ``train``    — train the per-type classifier bank from a corpus
* ``identify`` — identify the device in a pcap with a trained model
* ``evaluate`` — cross-validate a corpus and print per-type accuracy
* ``obs``      — pretty-print a trace captured with ``--trace-out``
* ``faultsim`` — drive the gateway pipeline through a scripted IoTSSP
  outage (retries, circuit breaker, degraded-mode quarantine; see
  ``docs/robustness.md``)
* ``fleetsim`` — drive a sharded IoTSSP with a simulated gateway fleet
  (consistent-hash routing, bounded queues, backpressure policies; see
  ``docs/scaling.md``)
* ``serve``    — stand the IoTSSP up as a real HTTP service (report
  submission, directive lookup, type enrolment, live ``/metrics``; see
  ``docs/serving.md``)

``train`` and ``identify`` accept ``--trace-out``/``--metrics-out`` to
capture the run's spans (JSON-lines) and metrics (Prometheus text) — see
``docs/observability.md``.

Example session::

    iot-sentinel dataset --runs 20 --seed 7 --output corpus.json
    iot-sentinel train --corpus corpus.json --output model.json
    iot-sentinel simulate --device iKettle2 --seed 3 --output kettle.pcap
    iot-sentinel identify --model model.json --pcap kettle.pcap \\
        --trace-out trace.jsonl --metrics-out metrics.prom
    iot-sentinel obs --trace trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

import numpy as np

from repro.core import DeviceIdentifier, fingerprint_from_records
from repro.core.persistence import (
    load_identifier,
    load_registry,
    save_identifier,
    save_registry,
)
from repro.devices import DEVICE_PROFILES, collect_dataset, profile_by_name, simulate_setup_capture
from repro.obs import (
    RecordingProvider,
    registry_to_prometheus,
    render_trace_tree,
    trace_from_jsonl,
    trace_to_jsonl,
    use_provider,
)
from repro.packets import decode, read_capture, write_pcap
from repro.reporting import crossvalidate_identification, render_accuracy_bars
from repro.securityservice import seed_database
from repro.securityservice.assessment import assess_device_type

__all__ = ["main", "build_parser"]


@contextmanager
def _observed(args: argparse.Namespace):
    """Record spans/metrics for a command when exporter flags are set.

    With neither ``--trace-out`` nor ``--metrics-out`` the global no-op
    provider stays installed and the command runs uninstrumented.
    Exports are written even when the command fails partway — a trace of
    a failed run is exactly what an operator wants to look at.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        yield
        return
    provider = RecordingProvider()
    try:
        with use_provider(provider):
            yield
    finally:
        if trace_out:
            with open(trace_out, "w", encoding="utf-8") as handle:
                handle.write(trace_to_jsonl(provider.tracer.records()))
            print(f"wrote trace to {trace_out}", file=sys.stderr)
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                handle.write(registry_to_prometheus(provider.metrics))
            print(f"wrote metrics to {metrics_out}", file=sys.stderr)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the run's spans as JSON-lines (inspect with `iot-sentinel obs`)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics in Prometheus text format",
    )


def _cmd_devices(_args: argparse.Namespace) -> int:
    for profile in DEVICE_PROFILES:
        techs = [
            name
            for name in ("wifi", "zigbee", "ethernet", "zwave", "other")
            if getattr(profile.connectivity, name)
        ]
        group = f"  [confusion group: {profile.confusion_group}]" if profile.confusion_group else ""
        print(f"{profile.identifier:<20} {profile.model:<50} {','.join(techs)}{group}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.device)
    rng = np.random.default_rng(args.seed)
    mac, records = simulate_setup_capture(profile, rng)
    write_pcap(args.output, records)
    print(f"device MAC: {mac}")
    print(f"wrote {len(records)} frames to {args.output}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    profiles = DEVICE_PROFILES
    if args.devices:
        wanted = set(args.devices)
        profiles = [p for p in DEVICE_PROFILES if p.identifier in wanted]
        missing = wanted - {p.identifier for p in profiles}
        if missing:
            print(f"error: unknown device types {sorted(missing)}", file=sys.stderr)
            return 1
    registry = collect_dataset(profiles, runs_per_device=args.runs, seed=args.seed)
    save_registry(registry, args.output)
    total = sum(registry.count(label) for label in registry.labels)
    print(f"wrote {total} fingerprints ({len(registry)} types) to {args.output}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    registry = load_registry(args.corpus)
    with _observed(args):
        if args.store:
            from pathlib import Path

            from repro.core import ModelStore, warm_start_identifier

            store = ModelStore(Path(args.store))
            identifier, cache_hit = warm_start_identifier(
                store=store, registry=registry, random_state=args.seed, n_jobs=args.jobs
            )
            print("model store: cache hit (training skipped)" if cache_hit
                  else "model store: cache miss (trained and cached)")
        else:
            identifier = DeviceIdentifier(random_state=args.seed).fit(
                registry, n_jobs=args.jobs
            )
    save_identifier(identifier, args.output)
    print(f"trained {len(identifier.labels)} classifiers -> {args.output}")
    return 0


def _cmd_identify(args: argparse.Namespace) -> int:
    identifier = load_identifier(args.model)
    capture = read_capture(args.pcap)  # classic pcap or pcapng
    mac = args.mac
    if mac is None:
        if not capture.records:
            print("error: empty capture", file=sys.stderr)
            return 1
        mac = decode(capture.records[0].data).src_mac
        print(f"(inferred device MAC {mac} from the first frame)")
    with _observed(args):
        fingerprint = fingerprint_from_records(capture.records, mac)
        if len(fingerprint) == 0:
            print(f"error: no packets from {mac} in capture", file=sys.stderr)
            return 1
        result = identifier.identify(fingerprint)
    assessment = assess_device_type(result.label, seed_database())
    print(f"device type     : {result.label}")
    if result.candidates:
        print(f"matched by      : {', '.join(result.candidates)}")
    if result.used_discrimination:
        scores = ", ".join(f"{k}={v:.2f}" for k, v in sorted(result.scores.items()))
        print(f"dissimilarity   : {scores}")
    print(f"isolation level : {assessment.level.value}")
    if assessment.vulnerability_ids:
        print(f"vulnerabilities : {', '.join(assessment.vulnerability_ids)}")
    return 0


def _cmd_export_captures(args: argparse.Namespace) -> int:
    """Materialize the evaluation corpus as pcap files on disk.

    Produces the public equivalent of the paper's "dataset collected from
    our evaluation setup is available on request": one pcap per setup run,
    laid out as ``<out>/<DeviceType>/run_<NN>.pcap``.
    """
    from pathlib import Path

    out_dir = Path(args.output)
    rng = np.random.default_rng(args.seed)
    profiles = DEVICE_PROFILES
    if args.devices:
        wanted = set(args.devices)
        profiles = [p for p in DEVICE_PROFILES if p.identifier in wanted]
    total = 0
    for profile in profiles:
        type_dir = out_dir / profile.identifier
        type_dir.mkdir(parents=True, exist_ok=True)
        for run in range(args.runs):
            mac, records = simulate_setup_capture(profile, rng)
            if args.bidirectional:
                from repro.devices import bidirectional_capture

                records = bidirectional_capture(records)
            write_pcap(type_dir / f"run_{run:02d}.pcap", records)
            total += 1
    print(f"wrote {total} captures under {out_dir}")
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    """Run a full collection campaign (pcaps + provenance manifest)."""
    from repro.labtools import CollectionCampaign

    profiles = DEVICE_PROFILES
    if args.devices:
        wanted = set(args.devices)
        profiles = [p for p in DEVICE_PROFILES if p.identifier in wanted]
    campaign = CollectionCampaign(
        args.output,
        profiles=profiles,
        runs_per_device=args.runs,
        seed=args.seed,
        bidirectional=not args.device_only,
    )
    manifest = campaign.run()
    summary = manifest.summary()
    print(
        f"{summary['total_runs']} runs / {summary['device_types']} types / "
        f"{summary['total_packets']} packets -> {args.output}"
    )
    problems = manifest.validate(args.output)
    if problems:
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_script(args: argparse.Namespace) -> int:
    """Print the scripted setup instructions for one device type."""
    from repro.labtools import setup_script

    profile = profile_by_name(args.device)
    print(f"Setup script: {profile.vendor} {profile.model}\n")
    for step in setup_script(profile):
        marker = "   <- capture checkpoint" if step.expects_traffic else ""
        print(f"{step}{marker}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Pretty-print a JSON-lines trace captured with ``--trace-out``."""
    try:
        with open(args.trace, encoding="utf-8") as handle:
            records = trace_from_jsonl(handle.read())
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.span:
        records = [r for r in records if r.name == args.span]
    if not records:
        print("(no spans)")
        return 0
    print(render_trace_tree(records))
    durations = {}
    for record in records:
        durations.setdefault(record.name, []).append(record.duration * 1e3)
    print()
    print(f"{'span':<32} {'count':>6} {'total ms':>10} {'mean ms':>10}")
    for name in sorted(durations):
        values = durations[name]
        print(
            f"{name:<32} {len(values):>6} {sum(values):>10.3f} "
            f"{sum(values) / len(values):>10.3f}"
        )
    return 0


def _cmd_faultsim(args: argparse.Namespace) -> int:
    """Full gateway pipeline under a scripted IoTSSP outage.

    A device joins, its setup is profiled, and the first ``--fail-submits``
    report submissions fail.  The device must land in provisional STRICT
    quarantine, then recover to the service's real directive via the
    periodic retry sweeps — with zero lost reports.  Exit status 1 if it
    does not (this is CI's fault-injection smoke check).
    """
    import json as _json

    from repro.gateway import SecurityGateway
    from repro.packets import builder
    from repro.sdn import IsolationLevel
    from repro.securityservice import (
        CircuitBreaker,
        DirectTransport,
        FaultInjectingTransport,
        IsolationDirective,
        ManualClock,
        ResilientTransport,
        RetryPolicy,
    )

    class _CannedService:
        """Stands in for the trained IoTSSP: always identifies the device."""

        def __init__(self) -> None:
            self.reports = 0

        def handle_report(self, report):
            self.reports += 1
            return IsolationDirective(device_type="demo-device", level=IsolationLevel.TRUSTED)

    clock = ManualClock()
    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        base_delay=args.base_delay,
        multiplier=args.multiplier,
        max_delay=args.max_delay,
        jitter=args.jitter,
        attempt_timeout=args.attempt_timeout,
    )
    breaker = CircuitBreaker(
        failure_threshold=args.breaker_threshold, reset_timeout=args.breaker_reset
    )
    service = _CannedService()
    faulty = FaultInjectingTransport.failing(
        DirectTransport(service), args.fail_submits, clock=clock
    )
    transport = ResilientTransport(
        faulty, policy=policy, seed=args.seed, clock=clock, breaker=breaker
    )

    mac = "aa:00:00:00:00:01"
    ip = "192.168.1.20"
    timeline: list[tuple[float, str]] = []
    with _observed(args):
        gateway = SecurityGateway(transport)
        gateway.attach_device(mac)
        frames = [
            builder.dhcp_discover_frame(mac, 1, "demo"),
            builder.arp_probe_frame(mac, ip),
            builder.arp_announce_frame(mac, ip),
            builder.dns_query_frame(mac, gateway.gateway_mac, ip, "192.168.1.1", "c.example"),
            builder.https_client_hello_frame(mac, gateway.gateway_mac, ip, "52.10.0.1", "c.example"),
        ]
        now = 0.0
        for frame in frames:
            gateway.process_frame(mac, frame, now)
            now += 0.3
        # The idle gap closes the profiling session on the next packet,
        # which triggers the (failing) submit inside the pipeline.
        now += 30.0
        gateway.process_frame(mac, builder.arp_announce_frame(mac, ip), now)
        first = gateway.directive_for(mac)
        timeline.append(
            (now, f"profiled: level={first.level.value} type={first.device_type} "
                  f"provisional={first.provisional}")
        )
        sweeps_used = 0
        for sweep in range(1, args.sweeps + 1):
            final = gateway.directive_for(mac)
            if final is not None and not final.provisional:
                break
            now += args.sweep_interval
            sweeps_used = sweep
            changed = gateway.refresh_directives(now)
            queue = gateway.pending_report_count
            if changed:
                upgraded = gateway.directive_for(mac)
                timeline.append(
                    (now, f"sweep {sweep}: recovered -> level={upgraded.level.value} "
                          f"type={upgraded.device_type}; flow rules flushed")
                )
            else:
                timeline.append(
                    (now, f"sweep {sweep}: still degraded (queue depth {queue}, "
                          f"breaker {transport.breaker.state.value})")
                )

    final = gateway.directive_for(mac)
    ok = (
        final is not None
        and not final.provisional
        and gateway.pending_report_count == 0
        and service.reports >= 1
    )
    summary = {
        "ok": ok,
        "fail_submits": args.fail_submits,
        "seed": args.seed,
        "first_directive_provisional": bool(first.provisional),
        "final_level": final.level.value if final else None,
        "final_type": final.device_type if final else None,
        "sweeps_used": sweeps_used,
        "submits": transport.submits,
        "attempts": transport.attempts,
        "faults_injected": faulty.faults_injected,
        "retry_schedule": [round(d, 6) for d in transport.backoff_log],
        "breaker_transitions": [
            {"from": old.value, "to": new.value, "at": round(at, 3)}
            for old, new, at in transport.breaker.transitions
        ],
        "pending_reports": gateway.pending_report_count,
        "reports_accepted": service.reports,
    }
    if args.json:
        print(_json.dumps(summary, indent=2))
    else:
        for at, message in timeline:
            print(f"t={at:8.2f}  {message}")
        print()
        print(f"retry schedule (seed={args.seed}): "
              + ", ".join(f"{d:.3f}s" for d in transport.backoff_log))
        for old, new, at in transport.breaker.transitions:
            print(f"breaker: {old.value} -> {new.value} at t={at:.2f}")
        print(f"submits={transport.submits} attempts={transport.attempts} "
              f"faults={faulty.faults_injected} accepted={service.reports}")
        print("outcome: " + ("recovered, zero lost reports" if ok else "NOT recovered"))
    return 0 if ok else 1


def _cmd_fleetsim(args: argparse.Namespace) -> int:
    """Simulated gateway fleet against a sharded IoTSSP.

    Trains an N-shard :class:`ShardedSecurityService` (warm-started from
    a shared model store when ``--store`` is given) and streams
    ``--devices`` simulated devices through bounded gateway pipelines,
    printing sustained identifications/sec, p50/p99 directive latency,
    and the drop/stall counts the chosen overflow policy produced.
    """
    import json as _json

    from repro.core.persistence import ModelStore
    from repro.core.registry import DeviceTypeRegistry
    from repro.devices import collect_fingerprints
    from repro.netsim import FleetSimulator, OverflowPolicy
    from repro.securityservice import DirectTransport, ShardedSecurityService

    rng = np.random.default_rng(args.seed)
    names = args.types or [
        "Aria", "HueBridge", "WeMoSwitch", "EdnetGateway",
        "MAXGateway", "EdimaxCam", "HomeMaticPlug", "Lightify",
    ]
    registry = DeviceTypeRegistry()
    pool = {}
    for name in names:
        fingerprints = collect_fingerprints(profile_by_name(name), runs=args.runs, rng=rng)
        registry.add_many(name, fingerprints)
        pool[name] = fingerprints[: max(1, args.runs // 2)]

    store = ModelStore(args.store) if args.store else None
    with _observed(args):
        front = ShardedSecurityService(args.shards, store=store, random_state=args.seed)
        front.train(registry)
        simulator = FleetSimulator(
            DirectTransport(front),
            pool,
            num_devices=args.devices,
            devices_per_gateway=args.devices_per_gateway,
            queue_capacity=args.capacity,
            policy=OverflowPolicy(args.policy),
            arrivals_per_round=args.arrival_rate,
        )
        stats = simulator.run()

    summary = {
        "devices": stats.devices,
        "gateways": stats.gateways,
        "shards": front.num_shards,
        "policy": args.policy,
        "processed": stats.processed,
        "dropped": stats.dropped,
        "stalled": stats.stalled_devices,
        "accuracy": round(stats.accuracy, 4),
        "ids_per_sec": round(stats.ids_per_sec, 1),
        "p50_latency_ms": round(stats.p50_latency_s * 1e3, 3),
        "p99_latency_ms": round(stats.p99_latency_s * 1e3, 3),
        "warm_start_hits": front.cache_hits,
    }
    if args.json:
        print(_json.dumps(summary, indent=2))
    else:
        print(
            f"{stats.devices:,} devices across {stats.gateways:,} gateways "
            f"-> {front.num_shards} shards ({args.policy})"
        )
        print(
            f"processed {stats.processed:,} (accuracy {stats.accuracy:.1%}), "
            f"dropped {stats.dropped:,}, stalled {stats.stalled_devices:,}"
        )
        print(
            f"sustained {stats.ids_per_sec:,.0f} ids/sec, directive latency "
            f"p50 {stats.p50_latency_s * 1e3:.2f} ms / "
            f"p99 {stats.p99_latency_s * 1e3:.2f} ms"
        )
    return 0 if stats.processed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the IoTSSP over HTTP until interrupted (``docs/serving.md``)."""
    import time as _time

    from repro.securityservice import IoTSecurityService
    from repro.securityservice.http import (
        ApiKeyRegistry,
        GatewayRateLimiter,
        SecurityServiceHTTPServer,
        ServiceApp,
    )
    from repro.securityservice.http.server import DEFAULT_MAX_SPAN_RECORDS

    service = IoTSecurityService(random_state=args.seed, n_jobs=args.jobs)
    if args.model:
        service.identifier = load_identifier(args.model)
        print(f"loaded model with {len(service.known_types)} types from {args.model}")
    else:
        registry = load_registry(args.corpus)
        if args.store:
            from pathlib import Path

            from repro.core import ModelStore, warm_start_identifier

            service.identifier, cache_hit = warm_start_identifier(
                registry, ModelStore(Path(args.store)),
                random_state=args.seed, n_jobs=args.jobs,
            )
            print("model store: cache hit (training skipped)" if cache_hit
                  else "model store: cache miss (trained and cached)")
        else:
            service.train(registry)
        print(f"trained {len(service.known_types)} types from {args.corpus}")

    auth = ApiKeyRegistry.from_file(args.api_keys) if args.api_keys else ApiKeyRegistry()
    limiter = None
    if args.rate > 0:
        limiter = GatewayRateLimiter(args.rate, args.burst, clock=_time.monotonic)
    app = ServiceApp(service, auth=auth, limiter=limiter)
    server = SecurityServiceHTTPServer(
        app,
        args.host,
        args.port,
        provider=RecordingProvider(
            max_span_records=args.max_span_records or DEFAULT_MAX_SPAN_RECORDS
        ),
    )
    mode = "open (no API keys)" if auth.open else f"{len(auth.gateway_ids)} gateway keys"
    limits = (
        f"{args.rate:g} req/s (burst {args.burst:g}) per gateway"
        if limiter is not None else "disabled"
    )
    print(f"IoTSSP serving on {server.base_url}")
    print(f"  auth       : {mode}")
    print(f"  rate limit : {limits}")
    print(f"  try        : curl {server.base_url}/healthz")
    print(f"               curl {server.base_url}/metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    registry = load_registry(args.corpus)
    result = crossvalidate_identification(
        registry, n_splits=args.folds, repetitions=args.repetitions, seed=args.seed
    )
    print(render_accuracy_bars(dict(sorted(result.per_class().items()))))
    print(f"\nglobal accuracy: {result.global_accuracy:.3f}")
    print(f"multi-match rate: {result.multi_match_fraction:.0%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="iot-sentinel",
        description="IoT Sentinel reproduction: device-type identification toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the simulated device-type catalogue")

    p_sim = sub.add_parser("simulate", help="simulate one device setup into a pcap")
    p_sim.add_argument("--device", required=True, help="device type identifier (see `devices`)")
    p_sim.add_argument("--output", required=True, help="pcap output path")
    p_sim.add_argument("--seed", type=int, default=None)

    p_data = sub.add_parser("dataset", help="build a labelled fingerprint corpus")
    p_data.add_argument("--runs", type=int, default=20, help="setup runs per device type")
    p_data.add_argument("--seed", type=int, default=None)
    p_data.add_argument("--output", required=True, help="corpus JSON output path")
    p_data.add_argument(
        "--devices", nargs="+", default=None,
        help="restrict to these device types (default: all 27)",
    )

    p_train = sub.add_parser("train", help="train the classifier bank")
    p_train.add_argument("--corpus", required=True, help="corpus JSON from `dataset`")
    p_train.add_argument("--output", required=True, help="model JSON output path")
    p_train.add_argument("--seed", type=int, default=None)
    p_train.add_argument(
        "--jobs", type=int, default=None,
        help="parallel training workers (-1 = all cores); models are "
        "identical for any value given the same --seed",
    )
    p_train.add_argument(
        "--store", default=None, metavar="DIR",
        help="warm-start model store directory: skip training when a "
        "cached model matches the corpus content hash, cache it otherwise",
    )
    _add_obs_flags(p_train)

    p_id = sub.add_parser("identify", help="identify the device in a pcap")
    p_id.add_argument("--model", required=True, help="model JSON from `train`")
    p_id.add_argument("--pcap", required=True, help="capture of the device's setup")
    p_id.add_argument("--mac", default=None, help="device MAC (default: first frame's source)")
    _add_obs_flags(p_id)

    p_export = sub.add_parser(
        "export-captures", help="materialize the evaluation corpus as pcaps"
    )
    p_export.add_argument("--output", required=True, help="output directory")
    p_export.add_argument("--runs", type=int, default=20)
    p_export.add_argument("--seed", type=int, default=None)
    p_export.add_argument("--devices", nargs="+", default=None)
    p_export.add_argument(
        "--bidirectional", action="store_true",
        help="include the environment's responses (DHCP offers, ARP replies, ...)",
    )

    p_collect = sub.add_parser(
        "collect", help="run a collection campaign with a provenance manifest"
    )
    p_collect.add_argument("--output", required=True, help="dataset directory")
    p_collect.add_argument("--runs", type=int, default=20)
    p_collect.add_argument("--seed", type=int, default=None)
    p_collect.add_argument("--devices", nargs="+", default=None)
    p_collect.add_argument(
        "--device-only", action="store_true",
        help="omit the environment's response frames",
    )

    p_script = sub.add_parser("script", help="show a device type's setup script")
    p_script.add_argument("--device", required=True)

    p_eval = sub.add_parser("evaluate", help="cross-validate a corpus")
    p_eval.add_argument("--corpus", required=True)
    p_eval.add_argument("--folds", type=int, default=10)
    p_eval.add_argument("--repetitions", type=int, default=1)
    p_eval.add_argument("--seed", type=int, default=None)

    p_obs = sub.add_parser("obs", help="pretty-print a captured span trace")
    p_obs.add_argument("--trace", required=True, help="JSON-lines trace from --trace-out")
    p_obs.add_argument("--span", default=None, help="show only spans with this name")

    p_fault = sub.add_parser(
        "faultsim", help="run the gateway pipeline through a scripted IoTSSP outage"
    )
    p_fault.add_argument(
        "--fail-submits", type=int, default=6,
        help="number of report submissions that fail before the service recovers",
    )
    p_fault.add_argument("--seed", type=int, default=0, help="backoff-jitter seed")
    p_fault.add_argument("--max-attempts", type=int, default=3, help="tries per submit call")
    p_fault.add_argument("--base-delay", type=float, default=0.5, help="first backoff, seconds")
    p_fault.add_argument("--multiplier", type=float, default=2.0, help="backoff growth factor")
    p_fault.add_argument("--max-delay", type=float, default=30.0, help="backoff cap, seconds")
    p_fault.add_argument("--jitter", type=float, default=0.1, help="jitter fraction [0,1)")
    p_fault.add_argument(
        "--attempt-timeout", type=float, default=5.0, help="per-attempt latency budget, seconds"
    )
    p_fault.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive failures before the circuit opens",
    )
    p_fault.add_argument(
        "--breaker-reset", type=float, default=30.0,
        help="seconds an open circuit waits before a half-open probe",
    )
    p_fault.add_argument(
        "--sweep-interval", type=float, default=60.0,
        help="simulated seconds between periodic retry sweeps",
    )
    p_fault.add_argument("--sweeps", type=int, default=10, help="maximum retry sweeps to run")
    p_fault.add_argument("--json", action="store_true", help="machine-readable summary")
    _add_obs_flags(p_fault)

    p_fleet = sub.add_parser(
        "fleetsim", help="drive a sharded IoTSSP with a simulated gateway fleet"
    )
    p_fleet.add_argument("--devices", type=int, default=10_000, help="fleet size")
    p_fleet.add_argument("--shards", type=int, default=4, help="IoTSSP shard count")
    p_fleet.add_argument(
        "--devices-per-gateway", type=int, default=200, help="devices behind each gateway"
    )
    p_fleet.add_argument(
        "--capacity", type=int, default=64, help="bounded-queue capacity per pipeline hop"
    )
    p_fleet.add_argument(
        "--policy", choices=["drop-oldest", "block"], default="drop-oldest",
        help="overflow policy for full queues",
    )
    p_fleet.add_argument(
        "--arrival-rate", type=int, default=64,
        help="profiling completions arriving per pipeline pass "
        "(raise past --capacity to force overload)",
    )
    p_fleet.add_argument(
        "--types", nargs="+", default=None, help="device types to simulate"
    )
    p_fleet.add_argument("--runs", type=int, default=8, help="training runs per type")
    p_fleet.add_argument(
        "--store", default=None, metavar="DIR",
        help="shared model store: train one shard, warm-start the rest",
    )
    p_fleet.add_argument("--seed", type=int, default=3)
    p_fleet.add_argument("--json", action="store_true", help="machine-readable summary")
    _add_obs_flags(p_fleet)

    p_serve = sub.add_parser(
        "serve", help="serve the IoTSSP over HTTP (see docs/serving.md)"
    )
    source = p_serve.add_mutually_exclusive_group(required=True)
    source.add_argument("--corpus", help="corpus JSON from `dataset` (train at startup)")
    source.add_argument("--model", help="model JSON from `train` (skip training)")
    p_serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="with --corpus: warm-start model store (skip training on a "
        "content-hash cache hit)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8799, help="0 = ephemeral")
    p_serve.add_argument("--seed", type=int, default=None)
    p_serve.add_argument("--jobs", type=int, default=None, help="training workers")
    p_serve.add_argument(
        "--api-keys", default=None, metavar="FILE",
        help='JSON {"gateway_id": "key"} table; omit to serve open',
    )
    p_serve.add_argument(
        "--rate", type=float, default=50.0,
        help="per-gateway sustained tokens/second (<= 0 disables limiting); "
        "batch submits cost one token per report",
    )
    p_serve.add_argument(
        "--burst", type=float, default=100.0, help="per-gateway bucket capacity"
    )
    p_serve.add_argument(
        "--max-span-records", type=int, default=None,
        help="span ring-buffer bound for /metrics' recording provider",
    )

    return parser


_COMMANDS = {
    "devices": _cmd_devices,
    "simulate": _cmd_simulate,
    "dataset": _cmd_dataset,
    "train": _cmd_train,
    "identify": _cmd_identify,
    "export-captures": _cmd_export_captures,
    "collect": _cmd_collect,
    "script": _cmd_script,
    "evaluate": _cmd_evaluate,
    "obs": _cmd_obs,
    "faultsim": _cmd_faultsim,
    "fleetsim": _cmd_fleetsim,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
