"""Wall-clock timing of the identification pipeline steps (Table IV)."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.extractor import fingerprint_from_records
from repro.core.identifier import DeviceIdentifier
from repro.core.registry import DeviceTypeRegistry
from repro.devices.dataset import simulate_setup_capture
from repro.devices.profiles import DEVICE_PROFILES

__all__ = ["TimingRow", "measure_identification_timing"]


@dataclass(frozen=True)
class TimingRow:
    """Mean ± standard deviation of one pipeline step, in milliseconds."""

    step: str
    mean_ms: float
    std_ms: float

    def __str__(self) -> str:  # matches the Table IV presentation
        return f"{self.step}: {self.mean_ms:.3f} ms (±{self.std_ms:.3f})"


def _stats(samples: list[float]) -> tuple[float, float]:
    data = np.array(samples) * 1e3
    return float(data.mean()), float(data.std(ddof=1) if len(data) > 1 else 0.0)


def measure_identification_timing(
    registry: DeviceTypeRegistry,
    identifier: DeviceIdentifier,
    *,
    trials: int = 30,
    seed: int | None = None,
) -> list[TimingRow]:
    """Reproduce the Table IV rows on a trained identifier.

    Measures: one classification, one edit-distance discrimination,
    fingerprint extraction, a full 27-classifier pass, the discrimination
    work of an average identification, and end-to-end identification.
    """
    rng = np.random.default_rng(seed)
    labels = registry.labels
    sample_fp = registry.fingerprints(labels[0])[0]
    fixed = sample_fp.fixed(identifier.fp_length).reshape(1, -1)
    one_model = identifier._models[labels[0]]

    single_classification: list[float] = []
    for _ in range(trials):
        start = time.perf_counter()
        one_model.classifier.predict_proba(fixed)
        single_classification.append(time.perf_counter() - start)

    single_discrimination: list[float] = []
    reference_label = labels[int(rng.integers(len(labels)))]
    for _ in range(trials):
        probe_label = labels[int(rng.integers(len(labels)))]
        probe = registry.fingerprints(probe_label)[0]
        start = time.perf_counter()
        identifier.discriminate(probe, [reference_label])
        single_discrimination.append(time.perf_counter() - start)

    extraction: list[float] = []
    profiles = {p.identifier: p for p in DEVICE_PROFILES}
    for _ in range(trials):
        profile = profiles[labels[int(rng.integers(len(labels)))]]
        mac, records = simulate_setup_capture(profile, rng)
        start = time.perf_counter()
        fingerprint_from_records(records, mac)
        extraction.append(time.perf_counter() - start)

    all_classifications: list[float] = []
    for _ in range(trials):
        start = time.perf_counter()
        identifier.classify(sample_fp)
        all_classifications.append(time.perf_counter() - start)

    full_identification: list[float] = []
    discrimination_share: list[float] = []
    for _ in range(trials):
        label = labels[int(rng.integers(len(labels)))]
        fps = registry.fingerprints(label)
        probe = fps[int(rng.integers(len(fps)))]
        start = time.perf_counter()
        candidates = identifier.classify(probe)
        mid = time.perf_counter()
        if len(candidates) > 1:
            identifier.discriminate(probe, candidates)
        end = time.perf_counter()
        full_identification.append(end - start)
        discrimination_share.append(end - mid)

    rows = [
        TimingRow("1 Classification (Random Forest)", *_stats(single_classification)),
        TimingRow("1 Discrimination (edit distance)", *_stats(single_discrimination)),
        TimingRow("Fingerprint extraction", *_stats(extraction)),
        TimingRow(f"{len(labels)} Classifications (Random Forest)", *_stats(all_classifications)),
        TimingRow("Discriminations (edit distance, avg case)", *_stats(discrimination_share)),
        TimingRow("Type Identification", *_stats(full_identification)),
    ]
    return rows
