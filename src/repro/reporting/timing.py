"""Span-based timing of the identification pipeline steps (Table IV).

Since the pipeline is instrumented with ``repro.obs``, this harness no
longer wraps its own ad-hoc ``perf_counter`` timers around pipeline
internals: it runs the real code paths under a fresh
:class:`~repro.obs.RecordingProvider` per measurement block and reads the
Table IV step durations straight from the emitted spans —

====================================  ====================================
Table IV step                         span (see ``docs/observability.md``)
====================================  ====================================
1 Classification (Random Forest)      ``identify.classify.model``
1 Discrimination (edit distance)      ``identify.discriminate``
Fingerprint extraction                ``extract.fingerprint``
n Classifications (Random Forest)     ``identify.classify``
Discriminations (avg case)            ``identify.discriminate`` under one
                                      ``identify`` root (0 when stage 1
                                      yields ≤ 1 candidate)
Type Identification                   ``identify``
====================================  ====================================

so the offline harness and a live gateway trace report the *same*
numbers for the same work, by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.extractor import fingerprint_from_records
from repro.core.identifier import DeviceIdentifier
from repro.core.registry import DeviceTypeRegistry
from repro.devices.dataset import simulate_setup_capture
from repro.devices.profiles import DEVICE_PROFILES
from repro.obs import RecordingProvider, use_provider
from repro.obs import names as obs_names

__all__ = ["TimingRow", "measure_identification_timing"]


@dataclass(frozen=True)
class TimingRow:
    """Mean ± standard deviation of one pipeline step, in milliseconds.

    The ± convention: ``std_ms`` is the *sample* standard deviation
    (``ddof=1``) over the individual measurements, matching the paper's
    Table IV presentation.  It is therefore undefined for fewer than two
    samples — :func:`measure_identification_timing` rejects ``trials < 2``
    up front rather than silently reporting ``±0.000``.
    """

    step: str
    mean_ms: float
    std_ms: float

    def __str__(self) -> str:  # matches the Table IV presentation
        return f"{self.step}: {self.mean_ms:.3f} ms (±{self.std_ms:.3f})"


def _stats(samples: list[float]) -> tuple[float, float]:
    """(mean, sample std) of a list of durations, in milliseconds."""
    if len(samples) < 2:
        raise ValueError(
            "need at least 2 samples for a mean ± sample-std (ddof=1) row; "
            f"got {len(samples)}"
        )
    data = np.array(samples) * 1e3
    return float(data.mean()), float(data.std(ddof=1))


def _fresh_provider() -> RecordingProvider:
    # Span durations are all we read; skip the histogram bridge.
    return RecordingProvider(record_span_durations=False)


def measure_identification_timing(
    registry: DeviceTypeRegistry,
    identifier: DeviceIdentifier,
    *,
    trials: int = 30,
    seed: int | None = None,
) -> list[TimingRow]:
    """Reproduce the Table IV rows on a trained identifier, from spans.

    Measures: one classification, one edit-distance discrimination,
    fingerprint extraction, a full classifier-bank pass, the
    discrimination work of an average identification, and end-to-end
    identification.  Each block runs under its own recording provider so
    the spans it reads are exactly the spans it caused.

    Raises
    ------
    ValueError
        If ``trials < 2`` — a single trial cannot support the mean ±
        sample-std presentation (see :class:`TimingRow`).
    """
    if trials < 2:
        raise ValueError(
            f"trials must be >= 2 for a mean ± sample-std estimate, got {trials}"
        )
    rng = np.random.default_rng(seed)
    labels = registry.labels
    sample_fp = registry.fingerprints(labels[0])[0]

    # Table IV times the paper's pipeline, which evaluates one forest at
    # a time — so stage 1 runs interpreted throughout this harness.  The
    # per-model child spans give the "1 Classification" row (which the
    # compiled bank has no per-model step to attribute) and keep the row
    # comparable with the "Type Identification" total below.
    compiled = identifier.compiled
    identifier.compiled = False
    try:
        return _measure_rows(registry, identifier, trials, rng, labels, sample_fp)
    finally:
        identifier.compiled = compiled


def _measure_rows(
    registry: DeviceTypeRegistry,
    identifier: DeviceIdentifier,
    trials: int,
    rng: np.random.Generator,
    labels: list[str],
    sample_fp,
) -> list[TimingRow]:
    # One classifier-bank pass per trial: the per-model child spans give
    # the "1 Classification" row, the enclosing span the "n
    # Classifications" row — same calls, two granularities.
    with use_provider(_fresh_provider()) as rec:
        for _ in range(trials):
            identifier.classify(sample_fp)
        single_classification = rec.tracer.durations(obs_names.SPAN_CLASSIFY_MODEL)
        all_classifications = rec.tracer.durations(obs_names.SPAN_CLASSIFY)

    # One single-candidate discrimination per trial.
    reference_label = labels[int(rng.integers(len(labels)))]
    with use_provider(_fresh_provider()) as rec:
        for _ in range(trials):
            probe_label = labels[int(rng.integers(len(labels)))]
            probe = registry.fingerprints(probe_label)[0]
            identifier.discriminate(probe, [reference_label])
        single_discrimination = rec.tracer.durations(obs_names.SPAN_DISCRIMINATE)

    # Fingerprint extraction from a fresh simulated capture per trial.
    profiles = {p.identifier: p for p in DEVICE_PROFILES}
    with use_provider(_fresh_provider()) as rec:
        for _ in range(trials):
            profile = profiles[labels[int(rng.integers(len(labels)))]]
            mac, records = simulate_setup_capture(profile, rng)
            fingerprint_from_records(records, mac)
        extraction = rec.tracer.durations(obs_names.SPAN_EXTRACT)

    # Full identifications; the discrimination share of each trial is the
    # summed duration of `identify.discriminate` spans under that trial's
    # `identify` root (zero when stage 1 returned at most one candidate).
    with use_provider(_fresh_provider()) as rec:
        for _ in range(trials):
            label = labels[int(rng.integers(len(labels)))]
            fps = registry.fingerprints(label)
            probe = fps[int(rng.integers(len(fps)))]
            identifier.identify(probe)
        roots = rec.tracer.records_named(obs_names.SPAN_IDENTIFY)
        discriminations = rec.tracer.records_named(obs_names.SPAN_DISCRIMINATE)
        root_ids = {r.span_id for r in roots}
        share = {r.span_id: 0.0 for r in roots}
        for record in discriminations:
            if record.parent_id in root_ids:
                share[record.parent_id] += record.duration
        full_identification = [r.duration for r in roots]
        discrimination_share = [share[r.span_id] for r in roots]

    return [
        TimingRow("1 Classification (Random Forest)", *_stats(single_classification)),
        TimingRow("1 Discrimination (edit distance)", *_stats(single_discrimination)),
        TimingRow("Fingerprint extraction", *_stats(extraction)),
        TimingRow(
            f"{len(labels)} Classifications (Random Forest)",
            *_stats(all_classifications),
        ),
        TimingRow(
            "Discriminations (edit distance, avg case)", *_stats(discrimination_share)
        ),
        TimingRow("Type Identification", *_stats(full_identification)),
    ]
