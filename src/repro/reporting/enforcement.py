"""Enforcement-overhead experiment runners (Table V / VI, Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gateway.gateway import SecurityGateway
from repro.netsim.eventsim import EventScheduler
from repro.netsim.flows import FlowLoadGenerator
from repro.netsim.gatewaymodel import ServiceCosts, SimulatedGateway
from repro.netsim.measurement import LatencyProbe, measure_rtt
from repro.netsim.resources import MemoryModel
from repro.netsim.topology import LabTopology
from repro.sdn.overlay import IsolationLevel
from repro.sdn.rules import EnforcementRule


class _NullService:
    """Stand-in IoTSSP for experiments that never profile a device."""

    def handle_report(self, report):  # pragma: no cover - never called
        raise AssertionError("performance experiments pre-authorize devices")


from repro.securityservice.protocol import DirectTransport  # noqa: E402

__all__ = [
    "Testbed",
    "build_testbed",
    "LatencyCell",
    "run_latency_matrix",
    "run_flow_sweep",
    "run_cpu_sweep",
    "run_memory_sweep",
]

#: The (source, destination) pairs of Table V.
TABLE5_PAIRS = (
    ("D1", "D4"), ("D1", "Slocal"), ("D1", "Sremote"),
    ("D2", "D4"), ("D2", "Slocal"), ("D2", "Sremote"),
    ("D3", "D4"), ("D3", "Slocal"), ("D3", "Sremote"),
)


@dataclass
class Testbed:
    """One instantiated Fig. 4 environment."""

    gateway: SecurityGateway
    scheduler: EventScheduler
    simgw: SimulatedGateway
    topology: LabTopology

    def probe(self, rng: np.random.Generator) -> LatencyProbe:
        return LatencyProbe(self.topology, self.simgw, rng=rng)


def build_testbed(*, filtering: bool, costs: ServiceCosts | None = None) -> Testbed:
    """A fresh gateway + topology, filtering on or off."""
    if filtering:
        gateway = SecurityGateway(DirectTransport(_NullService()), filtering=True)
    else:
        gateway = SecurityGateway(filtering=False)
    scheduler = EventScheduler()
    simgw = SimulatedGateway(
        gateway=gateway, scheduler=scheduler, costs=costs or ServiceCosts()
    )
    topology = LabTopology(gateway)
    return Testbed(gateway=gateway, scheduler=scheduler, simgw=simgw, topology=topology)


@dataclass(frozen=True)
class LatencyCell:
    """One Table V cell: RTT with and without filtering, ms."""

    src: str
    dst: str
    filtering_mean: float
    filtering_std: float
    baseline_mean: float
    baseline_std: float

    @property
    def overhead_percent(self) -> float:
        return 100.0 * (self.filtering_mean - self.baseline_mean) / self.baseline_mean


def run_latency_matrix(
    *, iterations: int = 15, seed: int = 0, pairs=TABLE5_PAIRS
) -> list[LatencyCell]:
    """Reproduce Table V: per-pair RTT, filtering vs no filtering.

    Both modes share the same link-latency random draws so the comparison
    isolates the gateway mechanism, like measuring on the same physical
    testbed.
    """
    cells = []
    measured: dict[bool, dict[tuple[str, str], tuple[float, float]]] = {}
    for filtering in (True, False):
        testbed = build_testbed(filtering=filtering)
        probe = testbed.probe(np.random.default_rng(seed))
        measured[filtering] = {
            pair: measure_rtt(probe, *pair, iterations=iterations) for pair in pairs
        }
    for pair in pairs:
        f_mean, f_std = measured[True][pair]
        b_mean, b_std = measured[False][pair]
        cells.append(
            LatencyCell(
                src=pair[0],
                dst=pair[1],
                filtering_mean=f_mean,
                filtering_std=f_std,
                baseline_mean=b_mean,
                baseline_std=b_std,
            )
        )
    return cells


def run_flow_sweep(
    flow_counts=(20, 40, 60, 80, 100, 120, 140),
    *,
    duration: float = 40.0,
    iterations: int = 15,
    seed: int = 0,
) -> dict[str, list[tuple[int, float]]]:
    """Fig. 6a: probe latency (ms) vs number of concurrent flows.

    Returns series keyed ``"D1-D2 (w Filtering)"`` etc., matching the
    figure's four lines.
    """
    series: dict[str, list[tuple[int, float]]] = {}
    for pair_index, pair in enumerate((("D1", "D2"), ("D1", "D3"))):
        for filtering in (True, False):
            key = f"{pair[0]}-{pair[1]} ({'w' if filtering else 'wo'} Filtering)"
            points = []
            for count in flow_counts:
                testbed = build_testbed(filtering=filtering)
                load = FlowLoadGenerator(
                    testbed.topology,
                    testbed.simgw,
                    testbed.scheduler,
                    rng=np.random.default_rng(seed + count),
                )
                load.start(load.make_flows(count), duration=duration)
                probe = testbed.probe(np.random.default_rng(seed + 7919 * pair_index))
                mean, _std = measure_rtt(probe, *pair, iterations=iterations)
                points.append((count, mean))
            series[key] = points
    return series


def run_cpu_sweep(
    flow_counts=(0, 20, 40, 60, 80, 100, 120, 140),
    *,
    duration: float = 40.0,
    seed: int = 0,
) -> dict[str, list[tuple[int, float]]]:
    """Fig. 6b: gateway CPU utilization (%) vs concurrent flows."""
    series: dict[str, list[tuple[int, float]]] = {}
    for filtering in (True, False):
        key = "With Filtering" if filtering else "Without Filtering"
        points = []
        for count in flow_counts:
            testbed = build_testbed(filtering=filtering)
            if count:
                load = FlowLoadGenerator(
                    testbed.topology,
                    testbed.simgw,
                    testbed.scheduler,
                    rng=np.random.default_rng(seed + count),
                )
                load.start(load.make_flows(count), duration=duration)
            testbed.scheduler.run_until(duration)
            points.append((count, 100.0 * testbed.simgw.utilization(duration)))
        series[key] = points
    return series


def run_memory_sweep(
    rule_counts=(0, 2500, 5000, 10000, 15000, 20000),
) -> dict[str, list[tuple[int, float]]]:
    """Fig. 6c: gateway memory (MB) vs number of enforcement rules."""
    model = MemoryModel()
    series: dict[str, list[tuple[int, float]]] = {"With Filtering": [], "Without Filtering": []}
    for count in rule_counts:
        testbed = build_testbed(filtering=True)
        for i in range(count):
            mac = f"0e:{(i >> 16) & 255:02x}:{(i >> 8) & 255:02x}:{i & 255:02x}:00:01"
            testbed.gateway.rule_cache.insert(
                EnforcementRule(
                    device_mac=mac,
                    level=IsolationLevel.RESTRICTED,
                    permitted_ips=frozenset({"52.1.2.3"}),
                )
            )
        series["With Filtering"].append((count, model.memory_mb(testbed.gateway)))
        baseline = build_testbed(filtering=False)
        series["Without Filtering"].append((count, model.memory_mb(baseline.gateway)))
    return series
