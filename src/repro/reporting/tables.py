"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["render_table", "render_accuracy_bars", "render_confusion", "render_series"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A minimal fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def render_accuracy_bars(per_class: Mapping[str, float], *, width: int = 40) -> str:
    """Fig. 5 as a horizontal text bar chart, sorted like the paper."""
    lines = []
    for label, accuracy in per_class.items():
        bar = "#" * int(round(accuracy * width))
        lines.append(f"{label:<22} {accuracy:5.2f} |{bar}")
    return "\n".join(lines)


def render_confusion(matrix: np.ndarray, labels: Sequence[str]) -> str:
    """Table III style A\\P confusion matrix."""
    headers = ["A\\P"] + [str(i + 1) for i in range(len(labels))]
    rows = []
    for i, label in enumerate(labels):
        del label
        rows.append([str(i + 1)] + [str(int(v)) for v in matrix[i]])
    legend = "\n".join(f"  {i + 1}: {label}" for i, label in enumerate(labels))
    return render_table(headers, rows) + "\nLegend:\n" + legend


def render_series(series: Mapping[str, Sequence[tuple[int, float]]], *, unit: str = "") -> str:
    """Figure series as aligned columns (x, one column per series)."""
    keys = list(series)
    xs = [x for x, _ in series[keys[0]]]
    headers = ["x"] + [f"{k}{f' ({unit})' if unit else ''}" for k in keys]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [f"{series[k][i][1]:.2f}" for k in keys])
    return render_table(headers, rows)
