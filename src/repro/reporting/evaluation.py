"""Identification-accuracy evaluation harness (Fig. 5 / Table III).

Implements the paper's protocol (Sect. VI-B): stratified 10-fold
cross-validation over the 540-fingerprint corpus, one Random Forest per
device type trained on all n positives + 10·n sampled negatives,
edit-distance discrimination on multi-matches, repeated ``repetitions``
times (the paper uses 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.identifier import DeviceIdentifier
from repro.core.registry import DeviceTypeRegistry
from repro.ml.metrics import confusion_matrix, per_class_accuracy
from repro.ml.validation import stratified_kfold

__all__ = ["CVResult", "crossvalidate_identification"]


@dataclass
class CVResult:
    """Pooled predictions from a repeated cross-validation run."""

    y_true: list[str] = field(default_factory=list)
    y_pred: list[str] = field(default_factory=list)
    candidate_counts: list[int] = field(default_factory=list)

    @property
    def global_accuracy(self) -> float:
        matches = sum(t == p for t, p in zip(self.y_true, self.y_pred))
        return matches / len(self.y_true)

    def per_class(self) -> dict[str, float]:
        """Ratio of correct identification per device type (Fig. 5)."""
        return per_class_accuracy(self.y_true, self.y_pred)

    def confusion(self, labels: list[str], *, other_label: str = "other") -> np.ndarray:
        """Confusion counts restricted to rows whose *actual* type is in
        ``labels`` (the Table III view).

        Predictions outside ``labels`` are folded into an extra
        ``other_label`` column appended on the right (all-zero when, as in
        the paper, confusion stays within the listed types).
        """
        label_set = set(labels)
        pairs = [(t, p) for t, p in zip(self.y_true, self.y_pred) if t in label_set]
        y_true = [t for t, _ in pairs]
        y_pred = [p if p in label_set else other_label for _, p in pairs]
        full, _order = confusion_matrix(y_true, y_pred, labels=list(labels) + [other_label])
        return full[: len(labels)]

    @property
    def multi_match_fraction(self) -> float:
        """Share of identifications that needed discrimination (Sect. VI-B)."""
        if not self.candidate_counts:
            return 0.0
        return sum(c > 1 for c in self.candidate_counts) / len(self.candidate_counts)


def crossvalidate_identification(
    registry: DeviceTypeRegistry,
    *,
    n_splits: int = 10,
    repetitions: int = 10,
    seed: int | None = None,
    identifier_kwargs: dict | None = None,
) -> CVResult:
    """Run the paper's repeated stratified k-fold evaluation.

    Returns pooled ``(y_true, y_pred)`` across all folds and repetitions;
    with the full 27×20 corpus and the paper's 10 repetitions each type
    accumulates 200 predictions, matching Table III's row sums.
    """
    rng = np.random.default_rng(seed)
    labels = registry.labels
    all_fps = [(label, fp) for label in labels for fp in registry.fingerprints(label)]
    y = np.array([label for label, _ in all_fps])
    result = CVResult()
    kwargs = identifier_kwargs or {}
    for _ in range(repetitions):
        for train_idx, test_idx in stratified_kfold(y, n_splits, rng=rng):
            fold_registry = DeviceTypeRegistry()
            for i in train_idx:
                label, fp = all_fps[i]
                fold_registry.add(label, fp)
            identifier = DeviceIdentifier(random_state=rng, **kwargs).fit(fold_registry)
            test_pairs = [all_fps[i] for i in test_idx]
            outcomes = identifier.identify_batch([fp for _, fp in test_pairs])
            for (label, _fp), outcome in zip(test_pairs, outcomes):
                result.y_true.append(label)
                result.y_pred.append(outcome.label)
                result.candidate_counts.append(len(outcome.candidates))
    return result
