"""ASCII line plots for the figure reproductions.

The benchmark artifacts are plain text; these helpers render the Fig. 6
series as terminal plots so the *shape* (flat latency, rising CPU, linear
memory) is visible at a glance without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@"


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    y_label: str = "",
    x_label: str = "x",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Each series gets its own marker; a legend follows the plot.  Axis
    bounds default to the data range with a small margin.
    """
    if not series:
        raise ValueError("no series to plot")
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    data_lo, data_hi = min(ys), max(ys)
    margin = (data_hi - data_lo) * 0.1 or max(abs(data_hi), 1.0) * 0.1
    y_lo = y_min if y_min is not None else data_lo - margin
    y_hi = y_max if y_max is not None else data_hi + margin
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        column = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return (height - 1 - row), column

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        del name
        for x, y in values:
            row, column = cell(x, y)
            if grid[row][column] in (" ", marker):
                grid[row][column] = marker
            else:
                grid[row][column] = "&"  # overlapping series

    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    lines = []
    if y_label:
        lines.append(f"{y_label}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    lines.append(
        " " * gutter + f" {x_lo:.4g}".ljust(width // 2) + f"{x_hi:.4g} ({x_label})".rjust(width // 2)
    )
    for index, name in enumerate(series):
        lines.append(f"  {_MARKERS[index % len(_MARKERS)]} {name}")
    if len(series) > 1:
        lines.append("  & overlapping points")
    return "\n".join(lines)
