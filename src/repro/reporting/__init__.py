"""Experiment runners and table/figure rendering shared by benchmarks."""

from .enforcement import (
    TABLE5_PAIRS,
    LatencyCell,
    Testbed,
    build_testbed,
    run_cpu_sweep,
    run_flow_sweep,
    run_latency_matrix,
    run_memory_sweep,
)
from .evaluation import CVResult, crossvalidate_identification
from .figures import ascii_plot
from .tables import render_accuracy_bars, render_confusion, render_series, render_table
from .timing import TimingRow, measure_identification_timing

__all__ = [
    "TABLE5_PAIRS",
    "CVResult",
    "LatencyCell",
    "Testbed",
    "TimingRow",
    "ascii_plot",
    "build_testbed",
    "crossvalidate_identification",
    "measure_identification_timing",
    "render_accuracy_bars",
    "render_confusion",
    "render_series",
    "render_table",
    "run_cpu_sweep",
    "run_flow_sweep",
    "run_latency_matrix",
    "run_memory_sweep",
]
