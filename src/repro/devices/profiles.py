"""Catalogue of the 27 evaluated device types (Table II).

Each profile encodes the device's connectivity technologies straight from
Table II and a synthetic *setup dialogue* whose structure reflects what is
publicly known about the device class (DHCP hostnames, vendor cloud
endpoints, discovery protocols, proprietary control ports).

Reproduction note (see DESIGN.md): the paper's confusion matrix (Table III)
shows misidentification exactly inside four same-vendor sibling groups —
four D-Link smart-home peripherals with identical hardware/firmware, the
two TP-Link plugs, the two Edimax plugs, and the two Smarter appliances.
We therefore give each sibling group a *shared dialogue template* with only
marginal stochastic differences, and every other device a structurally
distinct dialogue.  The classifier separates what the features can see, so
this reproduces both the ≥0.95 accuracy of the 17 distinct types and the
~0.5 accuracy inside sibling groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from .behavior import SetupDialogue, SetupStep, step

__all__ = ["Connectivity", "DeviceProfile", "DEVICE_PROFILES", "profile_by_name", "CONFUSION_GROUPS"]


@dataclass(frozen=True)
class Connectivity:
    """Supported connection technologies (the ●/○ columns of Table II)."""

    wifi: bool = False
    zigbee: bool = False
    ethernet: bool = False
    zwave: bool = False
    other: bool = False


@dataclass(frozen=True)
class DeviceProfile:
    """Static description + behavioural dialogue of one device type."""

    identifier: str
    vendor: str
    model: str
    connectivity: Connectivity
    oui: str
    dialogue: SetupDialogue
    port_base: int = 49200
    confusion_group: str | None = None
    standby: SetupDialogue | None = None


def _d(*steps: SetupStep) -> SetupDialogue:
    return SetupDialogue(steps=tuple(steps))


# --- shared building blocks -------------------------------------------------

def _wifi_join(hostname: str | None) -> tuple[SetupStep, ...]:
    """EAPoL handshake + DHCP + ARP probing common to WiFi devices."""
    return (
        step("eapol_handshake", gap=0.05),
        step("dhcp", hostname=hostname, gap=0.2),
        step("arp_probe", repeat=(1, 3), gap=0.1),
        step("arp_announce", gap=0.1),
    )


def _eth_join(hostname: str | None) -> tuple[SetupStep, ...]:
    """DHCP + ARP for Ethernet devices (no 802.1X handshake)."""
    return (
        step("dhcp", hostname=hostname, gap=0.2),
        step("arp_probe", repeat=(1, 2), gap=0.1),
        step("arp_announce", gap=0.1),
        step("arp_gateway", gap=0.1),
    )


# --- sibling group templates ------------------------------------------------

def _dlink_home_device(hostname: str, extra_query_p: float, body: tuple[int, int]) -> SetupDialogue:
    """mydlink-Home peripherals: identical hardware/firmware per the paper."""
    return _d(
        *_wifi_join(hostname),
        step("mdns_query", service="_dcp._tcp.local", gap=0.1),
        step("mdns_query", service="_dcp._tcp.local", probability=extra_query_p, gap=0.1),
        step("ssdp_notify", nt="urn:schemas-upnp-org:device:Basic:1",
             usn="uuid:dlink-home::device", gap=0.2),
        step("dns", host="mp-eu-dcdda.auto.mydlink.com", gap=0.2),
        step("https", host="mp-eu-dcdda.auto.mydlink.com", gap=0.3),
        step("udp_raw", port=5978, size=body, repeat=(5, 12), gap=0.2),
        step("http_post", host="mp-eu-dcdda.auto.mydlink.com", path="/signal", size=body,
             repeat=(4, 9), gap=0.3),
        step("udp_raw", port=5978, size=body, repeat=(6, 14), gap=0.25),
    )


def _tplink_plug(second_burst_p: float, body: tuple[int, int]) -> SetupDialogue:
    """TP-Link HS1xx smart plugs (port 9999 smart-home protocol)."""
    return _d(
        *_wifi_join("HS100"),
        step("dns", host="uk.pool.ntp.org", gap=0.15),
        step("ntp", host="uk.pool.ntp.org", gap=0.15),
        step("dns", host="devs.tplinkcloud.com", gap=0.2),
        step("tcp_raw", host="devs.tplinkcloud.com", port=50443, size=body, repeat=(5, 11), gap=0.3),
        step("udp_raw", broadcast_ip="255.255.255.255", port=9999, size=body, repeat=(4, 9), gap=0.2),
        step("tcp_raw", host="devs.tplinkcloud.com", port=50443, size=body, repeat=(4, 10),
             probability=second_burst_p, gap=0.3),
    )


def _edimax_plug(report_p: float, body: tuple[int, int]) -> SetupDialogue:
    """Edimax SP-x101W smart plugs (BOOTP first, then HTTP/10000 control)."""
    return _d(
        step("eapol_handshake", gap=0.05),
        step("bootp", gap=0.2),
        step("dhcp", hostname="SP1101W", gap=0.2),
        step("arp_probe", repeat=(1, 2), gap=0.1),
        step("arp_announce", gap=0.1),
        step("dns", host="www.myedimax.com", gap=0.2),
        step("http_post", host="www.myedimax.com", path="/reg", port=10000, size=body,
             repeat=(4, 9), gap=0.3),
        step("udp_raw", broadcast_ip="255.255.255.255", port=20560, size=body, repeat=(5, 11), gap=0.2),
        step("http_post", host="www.myedimax.com", path="/report", port=10000, size=body,
             repeat=(3, 8), probability=report_p, gap=0.3),
    )


def _smarter_appliance(body: tuple[int, int], retry_p: float) -> SetupDialogue:
    """Smarter kettle/coffee machine: purely local port-2081 protocol."""
    return _d(
        *_wifi_join("Smarter"),
        step("udp_raw", broadcast_ip="255.255.255.255", port=2081, size=body, repeat=(6, 14), gap=0.15),
        step("tcp_raw", host="home-gateway.local", port=2081, size=body, repeat=(5, 12), gap=0.2),
        step("tcp_raw", host="home-gateway.local", port=2081, size=body, repeat=(4, 9),
             probability=retry_p, gap=0.2),
    )


# --- the catalogue ----------------------------------------------------------

DEVICE_PROFILES: tuple[DeviceProfile, ...] = (
    DeviceProfile(
        identifier="Aria",
        vendor="Fitbit",
        model="Fitbit Aria WiFi-enabled scale",
        connectivity=Connectivity(wifi=True),
        oui="20:f8:5e",
        dialogue=_d(
            *_wifi_join("Aria"),
            step("dns", host="www.fitbit.com", gap=0.2),
            step("https", host="www.fitbit.com", gap=0.3),
            step("http_post", host="www.fitbit.com", path="/scale/upload", size=(180, 260), gap=0.3),
        ),
        standby=_d(step("https", host="www.fitbit.com", gap=1.0)),
    ),
    DeviceProfile(
        identifier="HomeMaticPlug",
        vendor="eQ-3",
        model="Homematic pluggable switch HMIP-PS",
        connectivity=Connectivity(other=True),
        oui="00:1a:22",
        dialogue=_d(
            step("llc_announce", repeat=(2, 4), size=(12, 20), gap=0.2),
            step("bootp", gap=0.3),
            step("udp_raw", broadcast_ip="255.255.255.255", port=43439, size=(40, 56),
                 repeat=(2, 3), gap=0.25),
            step("arp_announce", gap=0.1),
        ),
    ),
    DeviceProfile(
        identifier="Withings",
        vendor="Withings",
        model="Withings Wireless Scale WS-30",
        connectivity=Connectivity(wifi=True),
        oui="00:24:e4",
        dialogue=_d(
            *_wifi_join("WS-30"),
            step("dns", host="scalews.withings.net", gap=0.2),
            step("dns", host="ntp.withings.net", gap=0.15),
            step("ntp", host="ntp.withings.net", gap=0.15),
            step("https", host="scalews.withings.net", gap=0.3),
            step("http_get", host="scalews.withings.net", path="/cgi-bin/session", gap=0.3),
        ),
    ),
    DeviceProfile(
        identifier="MAXGateway",
        vendor="eQ-3",
        model="MAX! Cube LAN Gateway",
        connectivity=Connectivity(ethernet=True, other=True),
        oui="00:1a:22",
        dialogue=_d(
            *_eth_join("MAX!Cube"),
            step("udp_raw", broadcast_ip="255.255.255.255", port=23272, size=(19, 19),
                 repeat=(2, 3), gap=0.2),
            step("dns", host="max.eq-3.de", gap=0.2),
            step("tcp_raw", host="max.eq-3.de", port=62910, size=(64, 120), gap=0.3),
            step("ntp", host="ntp.homematic.com", gap=0.2),
        ),
    ),
    DeviceProfile(
        identifier="HueBridge",
        vendor="Philips",
        model="Philips Hue Bridge 3241312018",
        connectivity=Connectivity(zigbee=True, ethernet=True),
        oui="00:17:88",
        dialogue=_d(
            *_eth_join("Philips-hue"),
            step("igmp_join", group="239.255.255.250", gap=0.15),
            step("ssdp_notify", nt="urn:schemas-upnp-org:device:Basic:1",
                 usn="uuid:2f402f80-da50-11e1-9b23::basic", repeat=(2, 3), gap=0.2),
            step("mdns_announce", instance="hue.local", service="_hue._tcp.local", gap=0.2),
            step("dns", host="www.meethue.com", gap=0.2),
            step("dns", host="time.meethue.com", gap=0.15),
            step("ntp", host="time.meethue.com", gap=0.15),
            step("https", host="www.meethue.com", gap=0.3),
        ),
        standby=_d(step("https", host="www.meethue.com", gap=2.0)),
    ),
    DeviceProfile(
        identifier="HueSwitch",
        vendor="Philips",
        model="Philips Hue Light Switch PTM 215Z",
        connectivity=Connectivity(zigbee=True),
        oui="00:17:88",
        dialogue=_d(
            # ZigBee device: observable traffic is bridge-proxied announcements.
            step("mdns_query", service="_hue._tcp.local", repeat=(1, 2), gap=0.2),
            step("udp_raw", port=5007, size=(28, 44), repeat=(2, 3), gap=0.25),
            step("mdns_announce", instance="hue-switch.local", service="_hue._tcp.local", gap=0.2),
        ),
    ),
    DeviceProfile(
        identifier="EdnetGateway",
        vendor="Ednet",
        model="Ednet.living Starter kit power Gateway",
        connectivity=Connectivity(wifi=True, other=True),
        oui="84:c2:e4",
        dialogue=_d(
            *_wifi_join("ednet"),
            step("udp_raw", broadcast_ip="255.255.255.255", port=35932, size=(32, 48),
                 repeat=(2, 4), gap=0.2),
            step("dns", host="cloud.ednet-living.com", gap=0.2),
            step("tcp_raw", host="cloud.ednet-living.com", port=1883, size=(40, 80), gap=0.3),
        ),
    ),
    DeviceProfile(
        identifier="EdnetCam",
        vendor="Ednet",
        model="Ednet Wireless indoor IP camera Cube",
        connectivity=Connectivity(wifi=True, ethernet=True),
        oui="84:c2:e4",
        dialogue=_d(
            *_wifi_join("ipcam"),
            step("dns", host="www.aipcam.com", gap=0.2),
            step("dns", host="ntp.belkin.com", gap=0.15),
            step("ntp", host="ntp.belkin.com", gap=0.15),
            step("http_get", host="www.aipcam.com", path="/firmware/check", user_agent="ipcam", gap=0.3),
            step("tcp_raw", host="www.aipcam.com", port=8000, size=(96, 200), gap=0.3),
            step("ssdp_notify", nt="urn:schemas-upnp-org:device:camera:1",
                 usn="uuid:ednet-cam::camera", gap=0.2),
        ),
    ),
    DeviceProfile(
        identifier="EdimaxCam",
        vendor="Edimax",
        model="Edimax IC-3115W Smart HD WiFi Network Camera",
        connectivity=Connectivity(wifi=True, ethernet=True),
        oui="74:da:38",
        port_base=3072,  # registered-range ephemeral ports (older RTOS stack)
        dialogue=_d(
            *_wifi_join("IC-3115W"),
            step("dns", host="www.myedimax.com", gap=0.2),
            step("http_get", host="www.myedimax.com", path="/ddns/register", port=8080, gap=0.3),
            step("tcp_raw", host="www.myedimax.com", port=9765, size=(120, 240), gap=0.3),
            step("ssdp_msearch", st="urn:schemas-upnp-org:device:InternetGatewayDevice:1", gap=0.2),
        ),
    ),
    DeviceProfile(
        identifier="Lightify",
        vendor="Osram",
        model="Osram Lightify Gateway",
        connectivity=Connectivity(wifi=True, zigbee=True),
        oui="84:18:26",
        dialogue=_d(
            *_wifi_join("Lightify"),
            step("dns", host="lightify-infra.osram.info", gap=0.2),
            step("ntp", host="0.openwrt.pool.ntp.org", gap=0.15),
            step("tcp_raw", host="lightify-infra.osram.info", port=4000, size=(60, 110), gap=0.3),
            step("https", host="lightify-infra.osram.info", gap=0.3),
        ),
    ),
    DeviceProfile(
        identifier="WeMoInsightSwitch",
        vendor="Belkin",
        model="WeMo Insight Switch F7C029de",
        connectivity=Connectivity(wifi=True),
        oui="94:10:3e",
        dialogue=_d(
            *_wifi_join("WeMo.Insight"),
            step("ssdp_msearch", st="upnp:rootdevice", repeat=(1, 2), gap=0.15),
            step("ssdp_notify", nt="urn:Belkin:device:insight:1",
                 usn="uuid:Insight-1::belkin", repeat=(2, 3), gap=0.2),
            step("http_get", host="api.xbcs.net", path="/setup.xml", port=49153, gap=0.25),
            step("dns", host="api.xbcs.net", gap=0.2),
            step("http_post", host="api.xbcs.net", path="/insight/power", size=(140, 220), gap=0.3),
            step("ntp", host="time-a.nist.gov", gap=0.15),
        ),
    ),
    DeviceProfile(
        identifier="WeMoLink",
        vendor="Belkin",
        model="WeMo Link Lighting Bridge F7C031vf",
        connectivity=Connectivity(wifi=True, zigbee=True),
        oui="94:10:3e",
        dialogue=_d(
            *_wifi_join("WeMo.Link"),
            step("ssdp_notify", nt="urn:Belkin:device:bridge:1",
                 usn="uuid:Bridge-1::belkin", repeat=(3, 4), gap=0.2),
            step("mdns_announce", instance="wemo-link.local", service="_wemo._tcp.local", gap=0.2),
            step("dns", host="api.xbcs.net", gap=0.2),
            step("http_get", host="api.xbcs.net", path="/bridge/setup.xml", port=49153, gap=0.25),
            step("ntp", host="time-a.nist.gov", gap=0.15),
        ),
    ),
    DeviceProfile(
        identifier="WeMoSwitch",
        vendor="Belkin",
        model="WeMo Switch F7C027de",
        connectivity=Connectivity(wifi=True),
        oui="94:10:3e",
        dialogue=_d(
            *_wifi_join("WeMo.Switch"),
            step("ssdp_msearch", st="upnp:rootdevice", gap=0.15),
            step("ssdp_notify", nt="urn:Belkin:device:controllee:1",
                 usn="uuid:Socket-1::belkin", gap=0.2),
            step("http_get", host="api.xbcs.net", path="/setup.xml", port=49153, gap=0.25),
            step("dns", host="api.xbcs.net", gap=0.2),
        ),
    ),
    DeviceProfile(
        identifier="D-LinkHomeHub",
        vendor="D-Link",
        model="D-Link Connected Home Hub DCH-G020",
        connectivity=Connectivity(wifi=True, ethernet=True, zwave=True),
        oui="28:10:7b",
        dialogue=_d(
            *_eth_join("DCH-G020"),
            step("igmp_join", group="239.255.255.250", gap=0.15),
            step("ssdp_notify", nt="urn:schemas-upnp-org:device:hub:1",
                 usn="uuid:dch-g020::hub", repeat=(2, 3), gap=0.2),
            step("mdns_announce", instance="dch-g020.local", service="_dhnap._tcp.local", gap=0.2),
            step("dns", host="mp-eu-dcdda.auto.mydlink.com", gap=0.2),
            step("https", host="mp-eu-dcdda.auto.mydlink.com", gap=0.3),
            step("ntp", host="ntp1.dlink.com", gap=0.15),
            step("udp_raw", port=5978, size=(48, 80), gap=0.2),
        ),
    ),
    DeviceProfile(
        identifier="D-LinkDoorSensor",
        vendor="D-Link",
        model="D-Link Door & Window sensor",
        connectivity=Connectivity(zwave=True),
        oui="28:10:7b",
        dialogue=_d(
            # Z-Wave sensor: hub-proxied announcements only.
            step("llc_announce", size=(10, 16), gap=0.2),
            step("udp_raw", port=5978, size=(24, 36), repeat=(2, 3), gap=0.25),
            step("mdns_query", service="_dhnap._tcp.local", gap=0.2),
        ),
    ),
    DeviceProfile(
        identifier="D-LinkDayCam",
        vendor="D-Link",
        model="D-Link WiFi Day Camera DCS-930L",
        connectivity=Connectivity(wifi=True, ethernet=True),
        oui="28:10:7b",
        port_base=2048,  # registered-range ephemeral ports (RTOS stack)
        dialogue=_d(
            *_wifi_join("DCS-930L"),
            step("dns", host="www.mydlink.com", gap=0.2),
            step("dns", host="wm.mydlink.com", gap=0.15),
            step("http_get", host="wm.mydlink.com", path="/signin", user_agent="dcs-930l", gap=0.3),
            step("tcp_raw", host="wm.mydlink.com", port=554, size=(100, 180), gap=0.3),
            step("ssdp_notify", nt="urn:schemas-upnp-org:device:camera:1",
                 usn="uuid:dcs-930l::camera", gap=0.2),
        ),
    ),
    DeviceProfile(
        identifier="D-LinkCam",
        vendor="D-Link",
        model="D-Link HD IP Camera DCH-935L",
        connectivity=Connectivity(wifi=True),
        oui="28:10:7b",
        dialogue=_d(
            *_wifi_join("DCH-935L"),
            step("dns", host="mp-eu-dcdda.auto.mydlink.com", gap=0.2),
            step("https", host="mp-eu-dcdda.auto.mydlink.com", gap=0.3),
            step("udp_raw", port=8080, size=(60, 120), repeat=(1, 2), gap=0.25),
            step("mdns_announce", instance="dch-935l.local", service="_dcp._tcp.local", gap=0.2),
        ),
    ),
    # --- Confusion group 1: mydlink-Home peripherals (identical hw/fw) ----
    DeviceProfile(
        identifier="D-LinkSwitch",
        vendor="D-Link",
        model="D-Link Smart plug DSP-W215",
        connectivity=Connectivity(wifi=True),
        oui="28:10:7b",
        confusion_group="dlink-home",
        dialogue=_dlink_home_device("DSP-W215", extra_query_p=0.5, body=(60, 88)),
    ),
    DeviceProfile(
        identifier="D-LinkWaterSensor",
        vendor="D-Link",
        model="D-Link Water sensor DCH-S160",
        connectivity=Connectivity(wifi=True),
        oui="28:10:7b",
        confusion_group="dlink-home",
        dialogue=_dlink_home_device("DCH-S160", extra_query_p=0.5, body=(64, 92)),
    ),
    DeviceProfile(
        identifier="D-LinkSiren",
        vendor="D-Link",
        model="D-Link Siren DCH-S220",
        connectivity=Connectivity(wifi=True),
        oui="28:10:7b",
        confusion_group="dlink-home",
        dialogue=_dlink_home_device("DCH-S220", extra_query_p=0.5, body=(68, 96)),
    ),
    DeviceProfile(
        identifier="D-LinkSensor",
        vendor="D-Link",
        model="D-Link WiFi Motion sensor DCH-S150",
        connectivity=Connectivity(wifi=True),
        oui="28:10:7b",
        confusion_group="dlink-home",
        dialogue=_dlink_home_device("DCH-S150", extra_query_p=0.5, body=(72, 100)),
    ),
    # --- Confusion group 2: TP-Link plugs ---------------------------------
    DeviceProfile(
        identifier="TP-LinkPlugHS110",
        vendor="TP-Link",
        model="TP-Link WiFi Smart plug HS110",
        connectivity=Connectivity(wifi=True),
        oui="50:c7:bf",
        confusion_group="tplink-plug",
        dialogue=_tplink_plug(second_burst_p=0.5, body=(72, 104)),
    ),
    DeviceProfile(
        identifier="TP-LinkPlugHS100",
        vendor="TP-Link",
        model="TP-Link WiFi Smart plug HS100",
        connectivity=Connectivity(wifi=True),
        oui="50:c7:bf",
        confusion_group="tplink-plug",
        dialogue=_tplink_plug(second_burst_p=0.5, body=(80, 112)),
    ),
    # --- Confusion group 3: Edimax plugs -----------------------------------
    DeviceProfile(
        identifier="EdimaxPlug1101W",
        vendor="Edimax",
        model="Edimax SP-1101W Smart Plug Switch",
        connectivity=Connectivity(wifi=True),
        oui="74:da:38",
        confusion_group="edimax-plug",
        dialogue=_edimax_plug(report_p=0.5, body=(56, 84)),
    ),
    DeviceProfile(
        identifier="EdimaxPlug2101W",
        vendor="Edimax",
        model="Edimax SP-2101W Smart Plug Switch",
        connectivity=Connectivity(wifi=True),
        oui="74:da:38",
        confusion_group="edimax-plug",
        dialogue=_edimax_plug(report_p=0.5, body=(60, 88)),
    ),
    # --- Confusion group 4: Smarter appliances -----------------------------
    DeviceProfile(
        identifier="SmarterCoffee",
        vendor="Smarter",
        model="SmarterCoffee coffee machine SMC10-EU",
        connectivity=Connectivity(wifi=True),
        oui="5c:cf:7f",
        confusion_group="smarter",
        dialogue=_smarter_appliance(body=(32, 56), retry_p=0.5),
    ),
    DeviceProfile(
        identifier="iKettle2",
        vendor="Smarter",
        model="Smarter iKettle 2.0 SMK20-EU",
        connectivity=Connectivity(wifi=True),
        oui="5c:cf:7f",
        confusion_group="smarter",
        dialogue=_smarter_appliance(body=(36, 60), retry_p=0.5),
    ),
)

#: identifier → profile lookup.
_BY_NAME = {profile.identifier: profile for profile in DEVICE_PROFILES}

#: Confusion-group membership, matching Table III's device indices.
CONFUSION_GROUPS: dict[str, tuple[str, ...]] = {
    "dlink-home": ("D-LinkSwitch", "D-LinkWaterSensor", "D-LinkSiren", "D-LinkSensor"),
    "tplink-plug": ("TP-LinkPlugHS110", "TP-LinkPlugHS100"),
    "edimax-plug": ("EdimaxPlug1101W", "EdimaxPlug2101W"),
    "smarter": ("SmarterCoffee", "iKettle2"),
}


def profile_by_name(identifier: str) -> DeviceProfile:
    """Look up a profile by its Table II identifier."""
    try:
        return _BY_NAME[identifier]
    except KeyError:
        raise KeyError(f"unknown device type {identifier!r}") from None
