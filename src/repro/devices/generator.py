"""Execute setup dialogues into concrete captured frames.

The :class:`TrafficGenerator` plays a :class:`~repro.devices.behavior.SetupDialogue`
for one device instance on a simulated home network, producing timestamped
:class:`~repro.packets.pcap.CaptureRecord` frames exactly as the Security
Gateway's tcpdump would have seen them.  Every run re-rolls the stochastic
elements (optional steps, repeats, payload sizes, ports, timing), standing
in for the paper's 20 hard-reset setup repetitions per device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.packets import builder
from repro.packets.pcap import CaptureRecord

from .behavior import SetupDialogue, SetupStep

__all__ = ["NetworkEnvironment", "TrafficGenerator"]


@dataclass
class NetworkEnvironment:
    """Addressing context of the simulated home network."""

    gateway_mac: str = "02:00:00:00:00:01"
    gateway_ip: str = "192.168.1.1"
    dns_server: str = "192.168.1.1"
    subnet_prefix: str = "192.168.1"
    public_pool_prefix: str = "52.16"
    _next_host: int = field(default=20, repr=False)
    _next_public: int = field(default=1, repr=False)

    def allocate_device_ip(self) -> str:
        ip = f"{self.subnet_prefix}.{self._next_host}"
        self._next_host += 1
        if self._next_host > 250:
            self._next_host = 20
        return ip

    def allocate_public_ip(self) -> str:
        third, fourth = divmod(self._next_public, 250)
        self._next_public += 1
        return f"{self.public_pool_prefix}.{third % 250}.{fourth + 1}"


class TrafficGenerator:
    """Plays one device's setup dialogue into raw frames.

    Parameters
    ----------
    mac:
        The device instance's MAC address.
    dialogue:
        The setup script to execute.
    env:
        Shared network environment (addressing).
    port_base:
        Start of the source-port range the device draws ephemeral ports
        from; vendors differ here, which the port-class features pick up.
    rng:
        Randomness source; pass a seeded generator for reproducible runs.
    """

    def __init__(
        self,
        mac: str,
        dialogue: SetupDialogue,
        *,
        env: NetworkEnvironment | None = None,
        port_base: int = 49200,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.mac = mac
        self.dialogue = dialogue
        self.env = env or NetworkEnvironment()
        self.rng = rng or np.random.default_rng()
        self.device_ip = self.env.allocate_device_ip()
        self.link_local_v6 = "fe80::" + ":".join(
            f"{int(b, 16):x}" for b in mac.split(":")[2:6]
        )
        self._port = port_base + int(self.rng.integers(0, 64))
        self._endpoints: dict[str, str] = {}
        self._xid = int(self.rng.integers(1, 2**31))

    # -- helpers -----------------------------------------------------------

    def _next_port(self) -> int:
        self._port += 1 + int(self.rng.integers(0, 3))
        if self._port > 65500:
            self._port = 49200
        return self._port

    def resolve(self, host: str) -> str:
        """Stable per-run host → IP mapping (ordering feeds the counter)."""
        if host not in self._endpoints:
            self._endpoints[host] = self.env.allocate_public_ip()
        return self._endpoints[host]

    def _size(self, params: dict, key: str, default: tuple[int, int]) -> int:
        lo, hi = params.get(key, default)
        return int(self.rng.integers(lo, hi + 1))

    # -- step execution ----------------------------------------------------

    def _frames_for(self, s: SetupStep) -> list[bytes]:
        p = s.params
        mac, gw_mac = self.mac, self.env.gateway_mac
        ip, gw_ip = self.device_ip, self.env.gateway_ip
        kind = s.kind
        if kind == "eapol_handshake":
            # Device-originated handshake messages (2 and 4).
            return [builder.eapol_frame(mac, gw_mac, 2), builder.eapol_frame(mac, gw_mac, 4)]
        if kind == "llc_announce":
            payload = bytes(self._size(p, "size", (8, 24)))
            return [builder.llc_frame(mac, payload=payload)]
        if kind == "dhcp":
            self._xid += 1
            return [
                builder.dhcp_discover_frame(mac, self._xid, p.get("hostname")),
                builder.dhcp_request_frame(mac, self._xid, ip, gw_ip),
            ]
        if kind == "bootp":
            self._xid += 1
            return [builder.bootp_request_frame(mac, self._xid)]
        if kind == "arp_probe":
            return [builder.arp_probe_frame(mac, ip)]
        if kind == "arp_announce":
            return [builder.arp_announce_frame(mac, ip)]
        if kind == "arp_gateway":
            return [builder.arp_request_frame(mac, ip, gw_ip)]
        if kind == "icmpv6_rs":
            return [builder.icmpv6_router_solicit_frame(mac, self.link_local_v6)]
        if kind == "icmpv6_ns":
            return [builder.icmpv6_neighbor_solicit_frame(mac, "::", self.link_local_v6)]
        if kind == "mld_report":
            return [builder.mldv2_report_frame(mac, self.link_local_v6)]
        if kind == "igmp_join":
            return [builder.igmp_join_frame(mac, ip, p.get("group", "239.255.255.250"))]
        if kind == "dns":
            return [
                builder.dns_query_frame(
                    mac,
                    gw_mac,
                    ip,
                    self.env.dns_server,
                    p["host"],
                    src_port=self._next_port(),
                    txid=int(self.rng.integers(0, 2**16)),
                )
            ]
        if kind == "mdns_query":
            return [builder.mdns_query_frame(mac, ip, p.get("service", "_services._dns-sd._udp.local"))]
        if kind == "mdns_announce":
            return [
                builder.mdns_announce_frame(
                    mac, ip, p.get("instance", "device.local"), p.get("service", "_http._tcp.local")
                )
            ]
        if kind == "ssdp_msearch":
            return [
                builder.ssdp_msearch_frame(
                    mac, ip, p.get("st", "ssdp:all"), src_port=self._next_port()
                )
            ]
        if kind == "ssdp_notify":
            return [
                builder.ssdp_notify_frame(
                    mac,
                    ip,
                    p.get("location", f"http://{ip}:49152/description.xml"),
                    p.get("nt", "upnp:rootdevice"),
                    p.get("usn", "uuid:device::upnp:rootdevice"),
                )
            ]
        if kind == "ntp":
            server = self.resolve(p.get("host", "pool.ntp.org"))
            return [
                builder.ntp_request_frame(mac, gw_mac, ip, server, src_port=self._next_port())
            ]
        if kind == "tcp_syn":
            return [
                builder.tcp_syn_frame(
                    mac, gw_mac, ip, self.resolve(p["host"]), self._next_port(), p.get("port", 443)
                )
            ]
        if kind == "http_get":
            return [
                builder.http_get_frame(
                    mac,
                    gw_mac,
                    ip,
                    self.resolve(p["host"]),
                    p["host"],
                    p.get("path", "/"),
                    src_port=self._next_port(),
                    dst_port=p.get("port", 80),
                    user_agent=p.get("user_agent", "iot-device"),
                )
            ]
        if kind == "http_post":
            body = bytes(self._size(p, "size", (64, 160)))
            return [
                builder.http_post_frame(
                    mac,
                    gw_mac,
                    ip,
                    self.resolve(p["host"]),
                    p["host"],
                    p.get("path", "/api"),
                    body,
                    src_port=self._next_port(),
                    dst_port=p.get("port", 80),
                )
            ]
        if kind == "https":
            return [
                builder.https_client_hello_frame(
                    mac, gw_mac, ip, self.resolve(p["host"]), p["host"], src_port=self._next_port()
                )
            ]
        if kind == "tcp_raw":
            payload = bytes(self._size(p, "size", (32, 96)))
            return [
                builder.tcp_raw_frame(
                    mac,
                    gw_mac,
                    ip,
                    self.resolve(p["host"]),
                    self._next_port(),
                    p.get("port", 8883),
                    payload,
                )
            ]
        if kind == "udp_raw":
            payload = bytes(self._size(p, "size", (24, 72)))
            if "broadcast_ip" in p:
                dst_ip, dst_mac = p["broadcast_ip"], "ff:ff:ff:ff:ff:ff"
            elif "host" in p:
                dst_ip, dst_mac = self.resolve(p["host"]), gw_mac
            else:
                dst_ip, dst_mac = gw_ip, gw_mac
            return [
                builder.udp_raw_frame(
                    mac, dst_mac, ip, dst_ip, self._next_port(), p.get("port", 9999), payload
                )
            ]
        if kind == "icmp_echo":
            target = self.resolve(p["host"]) if "host" in p else gw_ip
            return [
                builder.icmp_echo_request_frame(
                    mac, gw_mac, ip, target, ident=1, seq=1,
                    payload=bytes(self._size(p, "size", (48, 48))),
                )
            ]
        raise AssertionError(f"unhandled step kind {kind}")  # guarded by SetupStep

    def run(self, start_time: float = 0.0) -> list[CaptureRecord]:
        """Execute the dialogue once; returns timestamped frames."""
        records: list[CaptureRecord] = []
        now = start_time
        for s in self.dialogue.steps:
            if self.rng.random() > s.probability:
                continue
            lo, hi = s.repeat
            repeats = int(self.rng.integers(lo, hi + 1))
            for _ in range(repeats):
                for frame in self._frames_for(s):
                    now += float(self.rng.exponential(s.gap))
                    records.append(CaptureRecord(timestamp=now, data=frame))
        return records
