"""Declarative setup-dialogue language for simulated IoT devices.

A device profile describes its setup phase as an ordered list of
:class:`SetupStep` entries — "perform the WPA2 handshake", "DHCP", "resolve
``api.vendor.com``", "open TLS to the cloud", … — with optional inclusion
probabilities, repeat ranges and payload-size jitter.  The
:mod:`repro.devices.generator` executes a dialogue into real Ethernet
frames via :mod:`repro.packets.builder`.

This layer is the substitution for the paper's physical lab captures: the
*structure* of the dialogue (protocol mix, endpoint count/order, packet
sizes, port classes) is exactly what the 23 Table-I features observe, so
device types that differ here are distinguishable the same way the real
ones were — and same-vendor siblings that share a dialogue template are
confusable the same way the real ones were (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StepKind", "SetupStep", "SetupDialogue", "step"]

#: Recognized step kinds, each mapping to one builder recipe.
STEP_KINDS = frozenset(
    {
        "eapol_handshake",
        "llc_announce",
        "dhcp",  # discover + request exchange
        "bootp",  # optionless BOOTP request
        "arp_probe",
        "arp_announce",
        "arp_gateway",
        "icmpv6_rs",
        "icmpv6_ns",
        "mld_report",
        "igmp_join",
        "dns",
        "mdns_query",
        "mdns_announce",
        "ssdp_msearch",
        "ssdp_notify",
        "ntp",
        "tcp_syn",
        "http_get",
        "http_post",
        "https",
        "tcp_raw",
        "udp_raw",
        "icmp_echo",
    }
)

StepKind = str


@dataclass(frozen=True)
class SetupStep:
    """One unit of the setup dialogue.

    Parameters
    ----------
    kind:
        One of :data:`STEP_KINDS`.
    params:
        Step-specific parameters (hostname, payload sizes, ports, …).
    probability:
        Chance the step occurs in a given setup run (stochastic setup
        variation is what makes the 20 runs per device non-identical).
    repeat:
        ``(min, max)`` inclusive range of repetitions when the step occurs.
    gap:
        Mean inter-packet delay (seconds) after each emitted frame.
    """

    kind: StepKind
    params: dict = field(default_factory=dict)
    probability: float = 1.0
    repeat: tuple[int, int] = (1, 1)
    gap: float = 0.15

    def __post_init__(self) -> None:
        if self.kind not in STEP_KINDS:
            raise ValueError(f"unknown step kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        lo, hi = self.repeat
        if lo < 1 or hi < lo:
            raise ValueError(f"invalid repeat range {self.repeat}")


def step(
    kind: StepKind,
    probability: float = 1.0,
    repeat: tuple[int, int] = (1, 1),
    gap: float = 0.15,
    **params,
) -> SetupStep:
    """Terse :class:`SetupStep` constructor used by the profile catalogue."""
    return SetupStep(kind=kind, params=params, probability=probability, repeat=repeat, gap=gap)


@dataclass(frozen=True)
class SetupDialogue:
    """A full setup-phase script for one device type."""

    steps: tuple[SetupStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("dialogue must have at least one step")

    def __len__(self) -> int:
        return len(self.steps)
