"""Fingerprint dataset construction (the paper's 27 × 20 = 540 corpus).

Replays the evaluation's data collection (Sect. VI-A): each device type's
setup procedure is executed ``runs_per_device`` times (the paper's hard
reset + re-setup loop), each run with a fresh MAC instance and fresh
stochastic choices, and the captured frames are distilled into
fingerprints through the exact extraction pipeline of Sect. IV-A.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.extractor import fingerprint_from_records
from repro.core.fingerprint import Fingerprint
from repro.core.registry import DeviceTypeRegistry
from repro.packets.pcap import CaptureRecord

from .generator import NetworkEnvironment, TrafficGenerator
from .profiles import DEVICE_PROFILES, DeviceProfile

__all__ = ["instance_mac", "simulate_setup_capture", "collect_fingerprints", "collect_dataset"]


def instance_mac(profile: DeviceProfile, rng: np.random.Generator) -> str:
    """A fresh MAC for one device instance (vendor OUI + random NIC part)."""
    suffix = rng.integers(0, 256, size=3)
    return profile.oui + ":" + ":".join(f"{int(b):02x}" for b in suffix)


def simulate_setup_capture(
    profile: DeviceProfile,
    rng: np.random.Generator | None = None,
    *,
    env: NetworkEnvironment | None = None,
    start_time: float = 0.0,
) -> tuple[str, list[CaptureRecord]]:
    """Run one setup procedure; returns (device MAC, captured frames)."""
    rng = rng or np.random.default_rng()
    mac = instance_mac(profile, rng)
    generator = TrafficGenerator(
        mac, profile.dialogue, env=env or NetworkEnvironment(),
        port_base=profile.port_base, rng=rng,
    )
    return mac, generator.run(start_time)


def collect_fingerprints(
    profile: DeviceProfile,
    runs: int = 20,
    *,
    rng: np.random.Generator | None = None,
) -> list[Fingerprint]:
    """Fingerprints from ``runs`` independent setup executions of one type."""
    rng = rng or np.random.default_rng()
    out: list[Fingerprint] = []
    for _ in range(runs):
        mac, records = simulate_setup_capture(profile, rng)
        out.append(fingerprint_from_records(records, mac, label=profile.identifier))
    return out


def collect_dataset(
    profiles: Sequence[DeviceProfile] = DEVICE_PROFILES,
    runs_per_device: int = 20,
    *,
    seed: int | None = None,
) -> DeviceTypeRegistry:
    """The full evaluation corpus: a registry with ``runs`` per type."""
    rng = np.random.default_rng(seed)
    registry = DeviceTypeRegistry()
    for profile in profiles:
        registry.add_many(profile.identifier, collect_fingerprints(profile, runs_per_device, rng=rng))
    return registry
