"""Firmware-update behaviour drift (Sect. VIII-B).

The paper defines a device *type* as make + model + **software version**
and observed that the few devices updated during data collection produced
"distinguishable fingerprints between software versions".  This module
models an update as a systematic shift in the observable dialogue — new
payload framing (size deltas), an added telemetry endpoint, altered retry
behaviour — so the drift experiment (``bench_ext_firmware.py``) can
reproduce that observation and show that the fix is simply enrolling the
new version as its own device type.
"""

from __future__ import annotations

from dataclasses import replace

from .behavior import SetupDialogue, SetupStep, step
from .profiles import DeviceProfile

__all__ = ["apply_firmware_update"]

#: Step kinds whose payload sizes a firmware revision plausibly changes.
_SIZED_KINDS = frozenset({"tcp_raw", "udp_raw", "http_post", "llc_announce"})


def _shift_sizes(s: SetupStep, delta: int) -> SetupStep:
    if s.kind not in _SIZED_KINDS or "size" not in s.params:
        return s
    lo, hi = s.params["size"]
    params = dict(s.params)
    params["size"] = (max(1, lo + delta), hi + delta)
    return SetupStep(
        kind=s.kind, params=params, probability=s.probability, repeat=s.repeat, gap=s.gap
    )


def apply_firmware_update(
    profile: DeviceProfile,
    *,
    version: str = "v2",
    size_delta: int = 24,
    add_telemetry: bool = True,
) -> DeviceProfile:
    """A new software version of ``profile`` with drifted behaviour.

    * all proprietary payload sizes shift by ``size_delta`` bytes (new
      message framing),
    * an update-check/telemetry exchange to a new vendor endpoint is
      appended (changes the destination counter sequence), and
    * the identifier gains a ``+version`` suffix, because make + model +
      software version is a distinct device type by the paper's definition.
    """
    steps = tuple(_shift_sizes(s, size_delta) for s in profile.dialogue.steps)
    if add_telemetry:
        steps = steps + (
            step("dns", host=f"fw-{version}.telemetry.example", gap=0.2),
            step("https", host=f"fw-{version}.telemetry.example", gap=0.3),
        )
    return replace(
        profile,
        identifier=f"{profile.identifier}+{version}",
        dialogue=SetupDialogue(steps=steps),
    )
