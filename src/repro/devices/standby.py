"""Standby-traffic profiling support (Sect. VIII-A).

For legacy installations, fingerprinting happens *after* a device has long
been connected, from "the communication behaviour that devices exhibit
during standby (e.g., heartbeat messages to the vendor's cloud solution),
or during the normal operation of the device".  The paper's working
hypothesis is that these exchanges are as type-characteristic as the setup
dialogue; this module makes that testable.

A profile may declare an explicit ``standby`` dialogue; otherwise
:func:`derive_standby_dialogue` builds one from the periodic subset of the
setup dialogue — name lookups, clock sync, cloud heartbeats, local
announcements — with heartbeat-like repetition.
"""

from __future__ import annotations

import numpy as np

from repro.core.extractor import fingerprint_from_records
from repro.core.fingerprint import Fingerprint
from repro.core.registry import DeviceTypeRegistry

from .behavior import SetupDialogue, SetupStep
from .dataset import instance_mac
from .generator import NetworkEnvironment, TrafficGenerator
from .profiles import DEVICE_PROFILES, DeviceProfile

__all__ = [
    "derive_standby_dialogue",
    "collect_standby_fingerprints",
    "collect_standby_dataset",
]

#: Step kinds that recur during normal operation (vs one-shot join steps).
_PERIODIC_KINDS = frozenset(
    {
        "dns",
        "ntp",
        "https",
        "http_get",
        "http_post",
        "tcp_raw",
        "udp_raw",
        "mdns_announce",
        "mdns_query",
        "ssdp_notify",
        "arp_gateway",
        "icmp_echo",
        "llc_announce",
    }
)


def derive_standby_dialogue(profile: DeviceProfile) -> SetupDialogue:
    """The dialogue a long-connected device shows during standby.

    Uses the profile's explicit ``standby`` dialogue when present;
    otherwise keeps the periodic steps of the setup dialogue (heartbeats
    happen at a slower cadence, so gaps are stretched).
    """
    if profile.standby is not None and len(profile.standby) >= 3:
        return profile.standby
    steps = [
        SetupStep(
            kind=s.kind,
            params=s.params,
            probability=s.probability,
            repeat=s.repeat,
            gap=s.gap * 4.0,
        )
        for s in profile.dialogue.steps
        if s.kind in _PERIODIC_KINDS
    ]
    if not steps:
        # Devices whose whole observable behaviour is join traffic keep it.
        return profile.dialogue
    return SetupDialogue(steps=tuple(steps))


def collect_standby_fingerprints(
    profile: DeviceProfile,
    runs: int = 20,
    *,
    rng: np.random.Generator | None = None,
) -> list[Fingerprint]:
    """Fingerprints extracted from ``runs`` standby observation windows."""
    rng = rng or np.random.default_rng()
    dialogue = derive_standby_dialogue(profile)
    out = []
    for _ in range(runs):
        mac = instance_mac(profile, rng)
        generator = TrafficGenerator(
            mac,
            dialogue,
            env=NetworkEnvironment(),
            port_base=profile.port_base,
            rng=rng,
        )
        records = generator.run()
        out.append(fingerprint_from_records(records, mac, label=profile.identifier))
    return out


def collect_standby_dataset(
    profiles=DEVICE_PROFILES,
    runs_per_device: int = 20,
    *,
    seed: int | None = None,
) -> DeviceTypeRegistry:
    """A full corpus of standby fingerprints (the VIII-A experiment)."""
    rng = np.random.default_rng(seed)
    registry = DeviceTypeRegistry()
    for profile in profiles:
        registry.add_many(
            profile.identifier, collect_standby_fingerprints(profile, runs_per_device, rng=rng)
        )
    return registry
