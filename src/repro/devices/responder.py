"""Environment responder: the gateway/servers answering device traffic.

Real captures are bidirectional — the gateway ACKs DHCP, answers ARP and
DNS, NTP servers reply, cloud endpoints complete TCP handshakes.  The
fingerprint only uses packets *sent by* the device (Sect. IV-A), so the
responses must not change identification results; but a faithful capture
pipeline has to cope with them, and the monitor tests exercise exactly
that.  :class:`EnvironmentResponder` turns a device-originated frame into
the response frames the home network would produce.
"""

from __future__ import annotations

from repro.packets import builder, decode
from repro.packets.arp import ARPPacket
from repro.packets.dhcp import DHCPMessage
from repro.packets.dns import DNSMessage
from repro.packets.pcap import CaptureRecord
from repro.packets.tcp import TCPSegment

from .generator import NetworkEnvironment

__all__ = ["EnvironmentResponder", "bidirectional_capture"]


class EnvironmentResponder:
    """Produces the network's answers to a device's setup packets."""

    def __init__(self, env: NetworkEnvironment | None = None) -> None:
        self.env = env or NetworkEnvironment()
        self._server_macs: dict[str, str] = {}
        self.responses_generated = 0

    def _server_mac(self, ip: str) -> str:
        """A stable pseudo-MAC for a remote/server IP (the uplink hop)."""
        if ip not in self._server_macs:
            index = len(self._server_macs) + 1
            self._server_macs[ip] = f"0c:00:00:00:{(index >> 8) & 255:02x}:{index & 255:02x}"
        return self._server_macs[ip]

    def respond(self, frame: bytes) -> list[bytes]:
        """Response frames (possibly none) the environment sends back."""
        packet = decode(frame)
        out: list[bytes] = []
        gw_mac, gw_ip = self.env.gateway_mac, self.env.gateway_ip

        dhcp = packet.layer(DHCPMessage)
        if dhcp is not None and dhcp.is_dhcp and packet.src_mac:
            from repro.packets.dhcp import DHCPDISCOVER, DHCPREQUEST

            offered = packet.src_ip if packet.src_ip not in (None, "0.0.0.0") else "192.168.1.199"
            if dhcp.message_type == DHCPDISCOVER:
                out.append(builder.dhcp_offer_frame(gw_mac, gw_ip, packet.src_mac, dhcp.xid, offered))
            elif dhcp.message_type == DHCPREQUEST:
                requested = dhcp.option(50)
                lease_ip = (
                    ".".join(str(b) for b in requested) if requested else offered
                )
                out.append(builder.dhcp_ack_frame(gw_mac, gw_ip, packet.src_mac, dhcp.xid, lease_ip))

        arp = packet.layer(ARPPacket)
        if arp is not None and arp.is_request and not arp.is_gratuitous:
            if arp.target_ip == gw_ip:
                out.append(builder.arp_reply_frame(gw_mac, gw_ip, arp.sender_mac, arp.sender_ip))

        dns = packet.layer(DNSMessage)
        if (
            dns is not None
            and packet.is_dns
            and not dns.is_response
            and dns.questions
            and packet.src_ip
            and packet.src_port
        ):
            name = dns.questions[0].name
            out.append(
                builder.dns_response_frame(
                    gw_mac,
                    packet.src_mac,
                    self.env.dns_server,
                    packet.src_ip,
                    name,
                    self.env.allocate_public_ip(),
                    txid=dns.txid,
                    client_port=packet.src_port,
                )
            )

        if packet.is_ntp and packet.src_ip and packet.src_port and packet.dst_ip:
            out.append(
                builder.ntp_response_frame(
                    self._server_mac(packet.dst_ip),
                    packet.src_mac,
                    packet.dst_ip,
                    packet.src_ip,
                    client_port=packet.src_port,
                )
            )

        segment = packet.layer(TCPSegment)
        if segment is not None and segment.is_syn and packet.dst_ip and packet.src_ip:
            out.append(
                builder.tcp_synack_frame(
                    self._server_mac(packet.dst_ip),
                    packet.src_mac,
                    packet.dst_ip,
                    packet.src_ip,
                    segment.dst_port,
                    segment.src_port,
                    ack=segment.seq + 1,
                )
            )

        self.responses_generated += len(out)
        return out


def bidirectional_capture(
    device_records: list[CaptureRecord],
    *,
    env: NetworkEnvironment | None = None,
    response_delay: float = 0.004,
) -> list[CaptureRecord]:
    """Interleave environment responses into a device-only capture.

    The result resembles what tcpdump on the gateway actually sees; the
    extraction pipeline must produce the same fingerprint from it.
    """
    responder = EnvironmentResponder(env)
    merged: list[CaptureRecord] = []
    for record in device_records:
        merged.append(record)
        for i, response in enumerate(responder.respond(record.data)):
            merged.append(
                CaptureRecord(timestamp=record.timestamp + response_delay * (i + 1), data=response)
            )
    # A response can land after the device's next packet when the dialogue
    # is bursty; tcpdump would record arrival order, so sort by time.
    merged.sort(key=lambda r: r.timestamp)
    return merged
