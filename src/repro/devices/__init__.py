"""Device-behaviour simulation: profiles, dialogues, traffic, datasets.

Substitutes the paper's physical IoT lab (Sect. VI-A): 27 device-type
profiles whose setup dialogues generate real packet bytes through
:mod:`repro.packets.builder`.
"""

from .behavior import SetupDialogue, SetupStep, step
from .dataset import collect_dataset, collect_fingerprints, instance_mac, simulate_setup_capture
from .firmware import apply_firmware_update
from .generator import NetworkEnvironment, TrafficGenerator
from .standby import (
    collect_standby_dataset,
    collect_standby_fingerprints,
    derive_standby_dialogue,
)
from .responder import EnvironmentResponder, bidirectional_capture
from .profiles import (
    CONFUSION_GROUPS,
    DEVICE_PROFILES,
    Connectivity,
    DeviceProfile,
    profile_by_name,
)

__all__ = [
    "CONFUSION_GROUPS",
    "DEVICE_PROFILES",
    "Connectivity",
    "DeviceProfile",
    "EnvironmentResponder",
    "NetworkEnvironment",
    "bidirectional_capture",
    "SetupDialogue",
    "SetupStep",
    "TrafficGenerator",
    "apply_firmware_update",
    "collect_dataset",
    "collect_standby_dataset",
    "collect_standby_fingerprints",
    "derive_standby_dialogue",
    "collect_fingerprints",
    "instance_mac",
    "profile_by_name",
    "simulate_setup_capture",
    "step",
]
